"""End-to-end request availability under chaos: resilience on vs off.

The chaos harness (:mod:`.scenario`) proves the *resolver mesh* heals;
this module closes the loop at the *client*: it drives steady
early-binding lookup traffic from a set of clients through a seeded
fault plan (INR crashes with restarts, lossy links, a partition, CPU
overload) and measures what the application actually experienced —
request success rate, tail latency, and how many ``Reply`` objects were
left permanently hanging. Running the same plan with the client
resilience layer (retries, deadlines, failover) and resolver admission
control enabled versus disabled quantifies exactly what the
request-resilience machinery buys.

:func:`write_bench_availability_json` emits the on/off comparison as
``BENCH_availability.json`` for trend tracking across sessions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..client import RetryPolicy
from ..experiments.domain import DSR_HOST, InsDomain
from ..naming import NameSpecifier
from ..obs import merge_counts
from ..resolver import InrConfig
from .plan import ChaosController, FaultEvent, FaultPlan
from .recovery import RecoveryTracker, percentile
from .scenario import fast_chaos_config


@dataclass
class AvailabilityReport:
    """What steady lookup traffic experienced during one chaos run."""

    seed: int
    resilience: bool
    requests_attempted: int
    #: resolved with at least one binding — the user-visible success
    requests_succeeded: int
    #: resolved, but with an empty binding list (stale/partitioned INR)
    requests_empty: int
    #: failed explicitly (timeout or deadline via the Reply error path)
    requests_failed: int
    #: never settled — the hangs the resilience layer exists to prevent
    requests_hung: int
    success_rate: float
    latency_p50: float
    latency_p99: float
    #: aggregated client resilience counters
    retries: int
    failovers: int
    deadline_exceeded: int
    pushbacks_received: int
    #: aggregated resolver admission-control counters
    shed_periodic: int
    shed_triggered: int
    pushbacks_sent: int
    faults_applied: int
    fault_kinds: Tuple[str, ...]
    mttr: Dict[str, Dict[str, float]]
    sim_time: float

    def fingerprint(self) -> Tuple:
        """Deterministic digest: same seed + parameters ⇒ identical."""
        mttr_items = tuple(
            (kind, tuple(sorted((k, round(v, 6)) for k, v in stats.items())))
            for kind, stats in sorted(self.mttr.items())
        )
        return (
            self.seed,
            self.resilience,
            self.requests_attempted,
            self.requests_succeeded,
            self.requests_empty,
            self.requests_failed,
            self.requests_hung,
            round(self.success_rate, 6),
            round(self.latency_p50, 6),
            round(self.latency_p99, 6),
            self.retries,
            self.failovers,
            self.deadline_exceeded,
            self.pushbacks_received,
            self.faults_applied,
            self.fault_kinds,
            mttr_items,
            round(self.sim_time, 6),
        )


#: Retry policy scaled to the fast chaos clocks (requests resolve in
#: milliseconds; soft state heals in seconds).
CHAOS_RETRY_POLICY = RetryPolicy(
    enabled=True,
    request_timeout=0.4,
    backoff_factor=2.0,
    backoff_max=2.0,
    jitter_fraction=0.1,
    max_attempts=4,
    deadline=5.0,
    failover_threshold=3,
)


def run_availability_scenario(
    seed: int = 0,
    resilience: bool = True,
    n_inrs: int = 4,
    n_services: int = 3,
    n_clients: int = 3,
    duration: float = 30.0,
    lookup_interval: float = 0.5,
    crash_fraction: float = 0.35,
    restart_after: Optional[float] = 6.0,
    link_fault_fraction: float = 0.5,
    loss_rate: float = 0.25,
    cpu_degrade_fraction: float = 0.3,
    cpu_degrade_factor: float = 0.02,
    partition: bool = True,
    config: Optional[InrConfig] = None,
    retry_policy: Optional[RetryPolicy] = None,
    settle: float = 3.0,
    drain: Optional[float] = None,
    observe: bool = False,
    admission_control: Optional[bool] = None,
) -> AvailabilityReport:
    """Run steady lookup traffic through a seeded fault plan.

    ``resilience`` toggles the whole availability stack at once: client
    retries/deadlines/failover *and* resolver admission control. The
    fault plan itself is identical for both settings of ``resilience``
    (same seed, same surface), so the pair of runs is a controlled
    ablation of the resilience machinery alone. ``admission_control``
    splits the resolver half out: when given, it overrides what
    ``resilience`` implies, so the experiment engine can ablate client
    retries and resolver admission control independently.

    ``observe=True`` attaches a :class:`repro.obs.ObsCollector` before
    any traffic flows: every lookup then produces a hop-by-hop span
    tree and the harvested metrics registry rides on the returned
    report as ``report.collector`` (a plain attribute — it is not part
    of the dataclass, the fingerprint, or the JSON artifact's report
    sections).
    """
    config = config or fast_chaos_config()
    config = replace(
        config,
        admission_control=(
            resilience if admission_control is None else admission_control
        ),
    )
    policy = (
        (retry_policy or CHAOS_RETRY_POLICY)
        if resilience
        else RetryPolicy.disabled()
    )

    domain = InsDomain(
        seed=seed,
        config=config,
        dsr_registration_lifetime=3.0 * config.heartbeat_interval,
        dsr_sweep_interval=max(0.5, config.heartbeat_interval / 2.0),
    )
    collector = domain.observe() if observe else None
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    names = [
        NameSpecifier.parse(f"[service=avail[id={index}]]")
        for index in range(n_services)
    ]
    for index, name in enumerate(names):
        domain.add_service(
            name,
            resolver=inrs[index % n_inrs],
            refresh_interval=config.refresh_interval,
            lifetime=config.record_lifetime,
        )
    clients = [
        domain.add_client(resolver=inrs[index % n_inrs], retry_policy=policy)
        for index in range(n_clients)
    ]
    domain.run(settle)

    # Fault surface: overlay edges plus every service and client link —
    # the full request path, so lookups actually traverse faulty links.
    link_pairs = set()
    for inr in domain.live_inrs:
        for neighbor in inr.neighbors.addresses:
            link_pairs.add(tuple(sorted((inr.address, neighbor))))
    for endpoint_process in list(domain.services) + list(domain.clients):
        if endpoint_process.resolver is not None:
            link_pairs.add(
                tuple(sorted((endpoint_process.address, endpoint_process.resolver)))
            )

    plan = FaultPlan.random(
        seed=seed,
        inr_addresses=[inr.address for inr in inrs],
        link_pairs=sorted(link_pairs),
        duration=duration,
        crash_fraction=crash_fraction,
        flap_fraction=0.0,
        restart_after=restart_after,
        link_fault_fraction=link_fault_fraction,
        loss_rate=loss_rate,
        duplicate_rate=0.05,
        reorder_rate=0.05,
        cpu_degrade_fraction=cpu_degrade_fraction,
        cpu_degrade_factor=cpu_degrade_factor,
        cpu_degrade_length=duration * 0.25,
    )
    if partition and n_inrs >= 2:
        # Cut one resolver off from the rest of the mesh (and the DSR)
        # for the middle third of the run; its directly-attached
        # services stay reachable, everything else on it goes stale.
        isolated = inrs[n_inrs // 2].address
        others = [inr.address for inr in inrs if inr.address != isolated]
        groups = ((isolated,), tuple(others) + (DSR_HOST,))
        plan = FaultPlan(
            events=FaultPlan.build(
                list(plan.events)
                + [
                    FaultEvent(at=duration * 0.35, kind="partition", target=groups),
                    FaultEvent(at=duration * 0.55, kind="heal", target=groups),
                ]
            ).events,
            duration=duration,
        )

    tracker = RecoveryTracker(domain, poll_interval=0.25)
    controller = ChaosController(domain, tracker=tracker)
    controller.execute(plan)

    # ------------------------------------------------------------------
    # Steady lookup traffic, scheduled up front (deterministic).
    # ------------------------------------------------------------------
    outstanding: List[dict] = []

    def issue(client_index: int, name: NameSpecifier) -> None:
        client = clients[client_index]
        sample = {"issued_at": domain.sim.now, "reply": None, "settled_at": None}
        outstanding.append(sample)
        try:
            reply = client.resolve_early(name)
        except RuntimeError:
            # Mid-failover with no resolver selected yet: in
            # fire-and-forget mode this request simply never happens.
            sample["reply"] = None
            return
        sample["reply"] = reply

        def settled(_result, sample=sample):
            sample["settled_at"] = domain.sim.now

        reply.then(settled)
        reply.on_error(settled)

    start = domain.sim.now
    request_index = 0
    for client_index in range(n_clients):
        offset = (client_index / max(n_clients, 1)) * lookup_interval
        t = offset
        while t < duration:
            name = names[request_index % len(names)]
            domain.sim.at(start + t, issue, client_index, name)
            request_index += 1
            t += lookup_interval

    domain.run(duration)
    # Drain: let in-flight retries hit their deadlines and settle.
    if drain is None:
        drain = (policy.deadline if policy.enabled else 0.0) + 3.0
    domain.run(drain)
    tracker.stop()

    # ------------------------------------------------------------------
    # Tally what the application saw.
    # ------------------------------------------------------------------
    succeeded = empty = failed = hung = 0
    latencies: List[float] = []
    for sample in outstanding:
        reply = sample["reply"]
        if reply is None:
            failed += 1
        elif reply.done:
            if reply.value:
                succeeded += 1
                latencies.append(sample["settled_at"] - sample["issued_at"])
            else:
                empty += 1
        elif reply.failed:
            failed += 1
        else:
            hung += 1
    attempted = len(outstanding)

    # Aggregate the per-component counters through their uniform
    # snapshot() shape instead of plucking fields one by one.
    client_totals = merge_counts(c.stats.snapshot() for c in clients)
    inr_totals = merge_counts(inr.stats.snapshot() for inr in domain.inrs)

    report = AvailabilityReport(
        seed=seed,
        resilience=resilience,
        requests_attempted=attempted,
        requests_succeeded=succeeded,
        requests_empty=empty,
        requests_failed=failed,
        requests_hung=hung,
        success_rate=succeeded / attempted if attempted else 0.0,
        latency_p50=percentile(latencies, 0.50) if latencies else float("nan"),
        latency_p99=percentile(latencies, 0.99) if latencies else float("nan"),
        retries=int(client_totals.get("retries", 0)),
        failovers=int(client_totals.get("failovers", 0)),
        deadline_exceeded=int(client_totals.get("deadline_exceeded", 0)),
        pushbacks_received=int(client_totals.get("pushbacks_received", 0)),
        shed_periodic=int(inr_totals.get("shed_periodic", 0)),
        shed_triggered=int(inr_totals.get("shed_triggered", 0)),
        pushbacks_sent=int(inr_totals.get("pushbacks_sent", 0)),
        faults_applied=len(controller.applied),
        fault_kinds=plan.kinds,
        mttr=tracker.mttr_summary(),
        sim_time=domain.now,
    )
    if collector is not None:
        domain.harvest()
        report.collector = collector
    return report


def write_bench_availability_json(
    path: Union[str, Path],
    resilience_on: AvailabilityReport,
    resilience_off: AvailabilityReport,
) -> dict:
    """Emit ``BENCH_availability.json``: the on/off availability
    comparison as a machine-readable artifact for later sessions.

    A report carrying a collector (``observe=True`` runs) contributes
    an ``observability`` section — per-hop latency percentiles, drop
    attribution, and the full metrics snapshot. Returns the payload.
    """
    payload = {
        "benchmark": "availability-chaos",
        "schema_version": 1,
        "resilience_on": asdict(resilience_on),
        "resilience_off": asdict(resilience_off),
        "success_rate_delta": round(
            resilience_on.success_rate - resilience_off.success_rate, 6
        ),
    }
    observability = {}
    for key, report in (
        ("resilience_on", resilience_on),
        ("resilience_off", resilience_off),
    ):
        collector = getattr(report, "collector", None)
        if collector is not None:
            observability[key] = collector.observability_payload()
    if observability:
        payload["observability"] = observability
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
