"""System-wide invariants an INS domain must uphold under chaos.

Two classes of property, mirroring how the paper argues robustness
(§2.2, §2.4):

**Always-invariants** — must hold at every instant, even mid-fault:

- the overlay peer graph is acyclic (a forest); the self-configuration
  protocol only ever peers a joiner with an earlier-ordered INR, and
  relaxation only probes earlier INRs, so no sequence of crashes,
  restarts and re-joins may create a cycle;
- per-name forwarding has no routing loops: following ``next_hop``
  pointers for any announcer never revisits a resolver, even while
  distributed Bellman-Ford is reconverging (split horizon over a tree);
- no candidate node is claimed twice: the DSR's candidate list holds no
  duplicates and never overlaps the active list, on the primary or any
  replica.

**Convergence-invariants** — must hold once faults have healed and the
soft-state clocks have run one full cycle (see
:meth:`InvariantChecker.convergence_bound`):

- the live resolvers re-form a *single* spanning tree (connected, and
  exactly n-1 mutual peerings);
- name-trees reach eventual consistency: every live resolver routing a
  vspace knows exactly the names of the live services advertising into
  it — nothing stale survives, nothing live is missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.domain import InsDomain
    from ..resolver.inr import INR


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.time:.3f}] {self.invariant}: {self.detail}"


class InvariantChecker:
    """Samples a whole :class:`InsDomain` and asserts global properties."""

    def __init__(self, domain: "InsDomain") -> None:
        self.domain = domain
        #: violations recorded by installed periodic sampling
        self.violations: List[Violation] = []
        self._sampling = False
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # Periodic sampling during chaos
    # ------------------------------------------------------------------
    def install(self, interval: float = 1.0) -> "InvariantChecker":
        """Check the always-invariants every ``interval`` virtual
        seconds, accumulating any breaches in :attr:`violations`."""
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if self._sampling:
            raise RuntimeError("checker already installed")
        self._sampling = True

        def sample() -> None:
            if not self._sampling:
                return
            self.violations.extend(self.check_always())
            self.samples_taken += 1
            self.domain.sim.schedule(interval, sample)

        self.domain.sim.schedule(interval, sample)
        return self

    def uninstall(self) -> None:
        self._sampling = False

    # ------------------------------------------------------------------
    # Invariant groups
    # ------------------------------------------------------------------
    def check_always(self) -> List[Violation]:
        """Invariants that must hold at every instant, faults or not."""
        return (
            self.overlay_is_forest()
            + self.no_routing_loops()
            + self.no_duplicate_candidate_claims()
        )

    def check_converged(self) -> List[Violation]:
        """Invariants that must hold after faults heal and soft state
        has had :meth:`convergence_bound` seconds to cycle."""
        return (
            self.overlay_is_single_tree()
            + self.names_consistent()
            + self.custody_drained()
        )

    def convergence_bound(self) -> float:
        """An upper bound (virtual seconds) on reconvergence after the
        last fault heals.

        Dead state must age out — bounded by the record lifetime, the
        neighbor timeout and the DSR registration lifetime, plus one
        sweep. Fresh state must propagate — one refresh interval per
        overlay hop, worst case the full live-resolver count, plus one
        refresh for the service's own re-advertisement.
        """
        config = self.domain.config
        depth = max(1, len(self._live_inrs()))
        expiry = max(
            config.record_lifetime,
            config.neighbor_timeout,
            self.domain.dsr.registration_lifetime,
        ) + config.expiry_sweep_interval
        if config.enable_custody:
            # A held payload is settled no later than its TTL plus one
            # retry tick: released if a route returned, lapsed if not.
            expiry = max(
                expiry, config.custody_ttl + config.custody_retry_interval
            )
        propagation = config.refresh_interval * (depth + 1)
        return expiry + propagation + 5.0

    # ------------------------------------------------------------------
    # Overlay topology
    # ------------------------------------------------------------------
    def _live_inrs(self) -> List["INR"]:
        return self.domain.live_inrs

    def _mutual_edges(self) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Live resolver addresses and their mutual peer edges."""
        live = {inr.address: inr for inr in self._live_inrs()}
        edges: Set[Tuple[str, str]] = set()
        for address, inr in live.items():
            for neighbor in inr.neighbors.addresses:
                peer = live.get(neighbor)
                if peer is not None and address in peer.neighbors:
                    edges.add((min(address, neighbor), max(address, neighbor)))
        return set(live), edges

    def overlay_is_forest(self) -> List[Violation]:
        """The mutual-peering graph over live resolvers is acyclic."""
        nodes, edges = self._mutual_edges()
        parent = {node: node for node in nodes}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        violations = []
        for a, b in sorted(edges):
            root_a, root_b = find(a), find(b)
            if root_a == root_b:
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="overlay-acyclic",
                        detail=f"edge {a}~{b} closes a cycle in the overlay",
                    )
                )
            else:
                parent[root_a] = root_b
        return violations

    def overlay_is_single_tree(self) -> List[Violation]:
        """Live resolvers form one connected spanning tree."""
        nodes, edges = self._mutual_edges()
        violations = self.overlay_is_forest()
        if len(nodes) <= 1:
            return violations
        # A forest with n-1 edges over n nodes is connected.
        if len(edges) != len(nodes) - 1:
            components = len(nodes) - len(edges) if not violations else -1
            violations.append(
                Violation(
                    time=self.domain.sim.now,
                    invariant="overlay-single-tree",
                    detail=(
                        f"{len(nodes)} live resolvers with {len(edges)} mutual "
                        f"peerings ({components} components); expected one tree"
                    ),
                )
            )
        return violations

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def no_routing_loops(self) -> List[Violation]:
        """Following ``next_hop`` chains never revisits a resolver."""
        live = {inr.address: inr for inr in self._live_inrs()}
        violations = []
        for address in sorted(live):
            inr = live[address]
            for vspace, tree in sorted(inr.trees.items()):
                for record in tree.records():
                    if record.route.is_local:
                        continue
                    visited = [address]
                    hop: Optional[str] = record.route.next_hop
                    announcer = record.announcer
                    while hop is not None:
                        if hop in visited:
                            violations.append(
                                Violation(
                                    time=self.domain.sim.now,
                                    invariant="no-routing-loops",
                                    detail=(
                                        f"announcer {announcer} in {vspace!r} "
                                        f"loops: {' -> '.join(visited + [hop])}"
                                    ),
                                )
                            )
                            break
                        visited.append(hop)
                        next_inr = live.get(hop)
                        if next_inr is None:
                            break  # dead end: packet drops, not a loop
                        next_tree = next_inr.trees.get(vspace)
                        next_record = (
                            next_tree.record_for(announcer)
                            if next_tree is not None
                            else None
                        )
                        if next_record is None or next_record.route.is_local:
                            break
                        hop = next_record.route.next_hop
        return violations

    # ------------------------------------------------------------------
    # DSR claims
    # ------------------------------------------------------------------
    def no_duplicate_candidate_claims(self) -> List[Violation]:
        """No node is spawnable twice or both spawnable and active."""
        violations = []
        resolvers = [("primary", self.domain.dsr)] + [
            (f"replica:{replica.address}", replica)
            for replica in self.domain.dsr_replicas
        ]
        for label, dsr in resolvers:
            candidates = dsr.candidates
            if len(set(candidates)) != len(candidates):
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="unique-candidate-claims",
                        detail=f"{label} candidate list has duplicates: {candidates}",
                    )
                )
            overlap = set(candidates) & set(dsr.active_inrs)
            if overlap:
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="unique-candidate-claims",
                        detail=f"{label} lists {sorted(overlap)} as both "
                        "candidate and active",
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # Custody (disruption tolerance)
    # ------------------------------------------------------------------
    def custody_drained(self) -> List[Violation]:
        """After heal plus the convergence bound, no payload may still
        sit in custody: every held payload must have been released (a
        route returned and it moved on) or lapsed by its TTL and
        attributed as a drop. A payload parked forever is a custody
        retry bug, not disruption tolerance. Vacuously holds when
        custody is disabled (no resolver owns a store).
        """
        violations = []
        for inr in sorted(self._live_inrs(), key=lambda i: i.address):
            store = getattr(inr, "custody", None)
            if store is None or not len(store):
                continue
            held = [
                f"{entry.vspace}:{entry.cause}" for entry in store.entries()
            ]
            violations.append(
                Violation(
                    time=self.domain.sim.now,
                    invariant="custody-drained",
                    detail=(
                        f"{inr.address} still holds {len(held)} custodied "
                        f"payload(s) ({', '.join(held[:4])}) after the "
                        "convergence bound"
                    ),
                )
            )
        return violations

    # ------------------------------------------------------------------
    # Delegation (crash-safe vspace handoff, PROTOCOL.md §11)
    # ------------------------------------------------------------------
    def single_vspace_authority(
        self, vspaces: Tuple[str, ...]
    ) -> List[Violation]:
        """Each named vspace has exactly one live authoritative INR,
        and the DSR's map agrees with the resolvers' own view.

        This is the delegation protocol's core safety property: a
        handoff must never leave a vspace with zero authorities (names
        lost) or two (split brain), no matter which side crashed at
        which phase. It is *not* part of :meth:`check_converged`
        because lookup-overload spawning legitimately replicates a
        vspace across resolvers — the delegation chaos scenario, which
        disables that path, calls this directly."""
        violations = []
        live = self._live_inrs()
        for vspace in sorted(vspaces):
            owners = sorted(
                inr.address for inr in live if inr.routes_vspace(vspace)
            )
            if len(owners) != 1:
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="single-vspace-authority",
                        detail=(
                            f"vspace {vspace!r} has {len(owners)} live "
                            f"authorities {owners}; expected exactly one"
                        ),
                    )
                )
            dsr_view = self.domain.dsr.resolvers_for(vspace)
            if list(dsr_view) != owners:
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="single-vspace-authority",
                        detail=(
                            f"DSR maps vspace {vspace!r} to {list(dsr_view)} "
                            f"but the live authorities are {owners}"
                        ),
                    )
                )
        return violations

    def delegations_settled(self) -> List[Violation]:
        """No live resolver still has a handoff in flight: every
        delegation either committed or aborted. A donor or recipient
        pinned in an unfinished handoff after the convergence bound is
        a liveness bug — it blocks both retries and self-termination."""
        violations = []
        for inr in sorted(self._live_inrs(), key=lambda i: i.address):
            coordinator = getattr(inr, "delegation", None)
            if coordinator is None:
                continue
            donor = coordinator.donor
            if donor is not None:
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="delegations-settled",
                        detail=(
                            f"{inr.address} still donating handoff "
                            f"{donor.handoff_id:#x} ({donor.vspace!r}, "
                            f"phase {donor.phase})"
                        ),
                    )
                )
            for handoff in coordinator.recipients.values():
                violations.append(
                    Violation(
                        time=self.domain.sim.now,
                        invariant="delegations-settled",
                        detail=(
                            f"{inr.address} still receiving handoff "
                            f"{handoff.handoff_id:#x} ({handoff.vspace!r}, "
                            f"phase {handoff.phase})"
                        ),
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # Name-tree eventual consistency
    # ------------------------------------------------------------------
    def _expected_names(self) -> Dict[str, Set]:
        """vspace -> announcers of live services attached to live
        resolvers (what every resolver of that vspace should know)."""
        live_resolver_addresses = {inr.address for inr in self._live_inrs()}
        expected: Dict[str, Set] = {}
        for service in self.domain.services:
            if service.node.process_on(service.port) is not service:
                continue  # service stopped
            if service.resolver not in live_resolver_addresses:
                continue  # its resolver is down: the name may rightly vanish
            for vspace in service.name.vspaces():
                expected.setdefault(vspace, set()).add(service.announcer)
        return expected

    def names_consistent(self) -> List[Violation]:
        """Every live resolver of a vspace knows exactly the live names.

        Only valid once :meth:`convergence_bound` seconds have passed
        since the last fault healed; before that, missing or stale
        names are the soft-state protocol working as designed.
        """
        expected = self._expected_names()
        violations = []
        for inr in sorted(self._live_inrs(), key=lambda i: i.address):
            for vspace, tree in sorted(inr.trees.items()):
                want = expected.get(vspace, set())
                have = {
                    record.announcer
                    for record in tree.records()
                    if not record.is_expired(self.domain.sim.now)
                }
                missing = want - have
                stale = have - want
                if missing:
                    violations.append(
                        Violation(
                            time=self.domain.sim.now,
                            invariant="name-consistency",
                            detail=f"{inr.address} vspace {vspace!r} is missing "
                            f"{sorted(str(a) for a in missing)}",
                        )
                    )
                if stale:
                    violations.append(
                        Violation(
                            time=self.domain.sim.now,
                            invariant="name-consistency",
                            detail=f"{inr.address} vspace {vspace!r} holds stale "
                            f"{sorted(str(a) for a in stale)}",
                        )
                    )
        return violations
