"""Recovery timestamps and MTTR statistics for chaos runs.

For every injected fault the tracker records three timestamps on the
simulator's virtual clock:

- **injected** — when the fault was applied;
- **detected** — when any healthy component first *reacted* to it (the
  DSR dropped the crashed INR, a peer flushed it, ...): this is what
  the soft-state timeouts bound;
- **recovered** — when the system finished reconverging (the resolver
  is back, re-registered and re-peered; the DSR's view matches the
  live set; names flow across the healed link again).

Detection and recovery are observed by polling predicates on a short
virtual-time interval, so the measured times are accurate to the poll
interval — plenty for comparing refresh-interval/neighbor-timeout
sweeps whose effects differ by tens of seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.domain import InsDomain
    from ..resolver.inr import INR

Predicate = Callable[[], bool]


@dataclass
class RecoveryRecord:
    """Lifecycle timestamps of one fault."""

    kind: str
    target: str
    injected_at: float
    detected_at: Optional[float] = None
    recovered_at: Optional[float] = None

    @property
    def time_to_detect(self) -> float:
        if self.detected_at is None:
            return math.inf
        return self.detected_at - self.injected_at

    @property
    def time_to_recover(self) -> float:
        """The fault's repair time (the MTTR sample); inf if it never
        recovered within the run."""
        if self.recovered_at is None:
            return math.inf
        return self.recovered_at - self.injected_at


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; inf propagates from unrecovered faults."""
    if not samples:
        return math.nan
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


class RecoveryTracker:
    """Watches fault recovery inside one :class:`InsDomain`."""

    def __init__(self, domain: "InsDomain", poll_interval: float = 0.25) -> None:
        if poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.domain = domain
        self.poll_interval = poll_interval
        self.records: List[RecoveryRecord] = []
        self._watches: List[Tuple[RecoveryRecord, Predicate, Predicate]] = []
        self._polling = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Generic watch machinery
    # ------------------------------------------------------------------
    def watch(
        self,
        kind: str,
        target: str,
        detect: Predicate,
        recover: Predicate,
    ) -> RecoveryRecord:
        """Track a fault injected *now*: ``detect`` should become true
        when the system notices the fault, ``recover`` when it has fully
        reconverged. ``recover`` is only evaluated after detection."""
        record = RecoveryRecord(
            kind=kind, target=target, injected_at=self.domain.sim.now
        )
        self.records.append(record)
        self._watches.append((record, detect, recover))
        self._ensure_polling()
        return record

    def stop(self) -> None:
        """Stop polling; open watches keep their None timestamps."""
        self._stopped = True

    def _ensure_polling(self) -> None:
        if not self._polling and not self._stopped:
            self._polling = True
            self.domain.sim.schedule(self.poll_interval, self._poll)

    def _poll(self) -> None:
        if self._stopped:
            self._polling = False
            return
        now = self.domain.sim.now
        still_open = []
        for record, detect, recover in self._watches:
            if record.detected_at is None:
                if detect():
                    record.detected_at = now
            if recover():
                # A fault can heal before its soft-state detection signal
                # fires (e.g. a restart quicker than the registration
                # lifetime); recovery then implies detection.
                if record.detected_at is None:
                    record.detected_at = now
                record.recovered_at = now
                continue
            still_open.append((record, detect, recover))
        self._watches = still_open
        if self._watches:
            self.domain.sim.schedule(self.poll_interval, self._poll)
        else:
            self._polling = False

    # ------------------------------------------------------------------
    # Canned watches for the standard fault vocabulary
    # ------------------------------------------------------------------
    def watch_inr_crash(self, inr: "INR") -> RecoveryRecord:
        """A crash with no planned restart: the system has recovered
        once every trace of the dead resolver is gone — the DSR expired
        its registration and every live peer dropped and flushed it."""
        address = inr.address
        domain = self.domain
        detected = self._crash_detector(address)

        def recovered() -> bool:
            return address not in domain.dsr.active_inrs and all(
                address not in live.neighbors for live in domain.live_inrs
            )

        return self.watch("crash-inr", address, detected, recovered)

    def watch_inr_crash_with_restart(self, inr: "INR") -> RecoveryRecord:
        """A crash whose plan schedules a restart: recovery additionally
        requires the resurrected resolver to be active, re-registered,
        re-peered (when there is anyone to peer with), and to have heard
        every directly-attached live service re-advertise — a restarted
        INR comes back with empty name-trees, so its names only return
        at the services' refresh cadence."""
        address = inr.address
        domain = self.domain
        detected = self._crash_detector(address)

        def names_rebuilt(revived: "INR") -> bool:
            now = domain.sim.now
            for service in domain.services:
                if service.resolver != address:
                    continue
                if service.node.process_on(service.port) is not service:
                    continue  # service itself is down
                for vspace in service.name.vspaces():
                    tree = revived.trees.get(vspace)
                    record = (
                        tree.record_for(service.announcer)
                        if tree is not None
                        else None
                    )
                    if record is None or record.is_expired(now):
                        return False
            return True

        def recovered() -> bool:
            revived = domain.inr_at(address)
            if revived is None or revived.terminated or not revived.active:
                return False
            if address not in domain.dsr.active_inrs:
                return False
            others = [i for i in domain.live_inrs if i.address != address]
            if others and len(revived.neighbors) == 0:
                return False
            return names_rebuilt(revived)

        return self.watch("crash-inr", address, detected, recovered)

    def _crash_detector(self, address: str) -> Predicate:
        """Detection = the DSR expired the registration, or any peer
        that knew the dead resolver at injection time has dropped it."""
        domain = self.domain
        peers_at_injection = [
            live for live in domain.live_inrs if address in live.neighbors
        ]

        def detected() -> bool:
            if address not in domain.dsr.active_inrs:
                return True
            return any(
                address not in peer.neighbors
                for peer in peers_at_injection
                if not peer.terminated
            )

        return detected

    def watch_link_flap(self, pair: Tuple[str, str]) -> RecoveryRecord:
        """A link flap: detected while the link is down, recovered when
        it is back up and traffic flows again (best observable proxy:
        the link is up and no endpoint node is isolated)."""
        a, b = pair
        link = self.domain.network.link(a, b)

        def detected() -> bool:
            return not link.up

        def recovered() -> bool:
            return link.up

        return self.watch("link-flap", f"{a}~{b}", detected, recovered)

    def watch_dsr_failover(self) -> RecoveryRecord:
        """A DSR failover: recovered when the promoted primary's active
        list exactly matches the live resolvers."""
        domain = self.domain

        def detected() -> bool:
            return True  # the failover itself is the detection event

        def recovered() -> bool:
            live = {inr.address for inr in domain.live_inrs}
            return set(domain.dsr.active_inrs) == live

        return self.watch("dsr-failover", domain.dsr.address, detected, recovered)

    # ------------------------------------------------------------------
    # MTTR statistics
    # ------------------------------------------------------------------
    def mttr_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-fault-kind MTTR percentiles (seconds of virtual time).

        ``unrecovered`` counts faults whose recovery predicate never
        held; their inf samples propagate into the percentiles, so a
        finite p100 certifies every fault of that kind healed.
        """
        by_kind: Dict[str, List[RecoveryRecord]] = {}
        for record in self.records:
            by_kind.setdefault(record.kind, []).append(record)
        summary: Dict[str, Dict[str, float]] = {}
        for kind, records in sorted(by_kind.items()):
            samples = [record.time_to_recover for record in records]
            detects = [record.time_to_detect for record in records]
            summary[kind] = {
                "count": float(len(samples)),
                "p50": percentile(samples, 0.50),
                "p95": percentile(samples, 0.95),
                "p100": max(samples),
                "detect_p50": percentile(detects, 0.50),
                "detect_p100": max(detects),
                "unrecovered": float(sum(1 for s in samples if math.isinf(s))),
            }
        return summary
