"""Canned chaos scenarios and the recovery-time ablation.

:func:`run_chaos_scenario` is the standard stress: it builds a domain,
generates a seed-driven :class:`~repro.chaos.plan.FaultPlan` that
crashes a fraction of the resolvers (with restarts), flaps a fraction
of the overlay links, injects duplication/reordering, and fails the DSR
over to a warm standby — all while the always-invariants are sampled —
then waits out the convergence bound and checks the converged
invariants. The returned report carries a :meth:`fingerprint
<ChaosReport.fingerprint>` so two runs with the same seed can be
compared bit-for-bit.

:func:`run_recovery_ablation` sweeps the soft-state clocks (refresh
interval and neighbor timeout) through that scenario and reports MTTR
percentiles against control-bandwidth cost — the robustness analogue of
the paper's bandwidth/staleness tradeoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..experiments.domain import InsDomain
from ..resolver import InrConfig
from .invariants import InvariantChecker, Violation
from .plan import ChaosController, FaultPlan
from .recovery import RecoveryTracker


def fast_chaos_config(
    refresh_interval: float = 1.0,
    neighbor_timeout: float = 4.0,
) -> InrConfig:
    """Soft-state clocks scaled down ~15x from the paper's defaults so a
    whole fault-and-recovery cycle fits in a short simulated run; the
    three-refreshes-per-lifetime soft-state rule is preserved."""
    return InrConfig(
        refresh_interval=refresh_interval,
        record_lifetime=3.0 * refresh_interval,
        expiry_sweep_interval=max(0.5, refresh_interval / 2.0),
        heartbeat_interval=max(0.5, refresh_interval * 2.0 / 3.0),
        neighbor_timeout=neighbor_timeout,
    )


@dataclass
class ChaosReport:
    """Everything a chaos run observed."""

    seed: int
    faults_applied: int
    fault_kinds: Tuple[str, ...]
    violations: List[Violation]
    converged_violations: List[Violation]
    invariant_samples: int
    mttr: Dict[str, Dict[str, float]]
    final_active: Tuple[str, ...]
    final_name_counts: Tuple[Tuple[str, int], ...]
    control_bytes: int
    sim_time: float

    @property
    def all_violations(self) -> List[Violation]:
        return self.violations + self.converged_violations

    def fingerprint(self) -> Tuple:
        """A deterministic digest of the run: two executions with the
        same seed and topology must produce identical fingerprints."""
        mttr_items = tuple(
            (kind, tuple(sorted((k, round(v, 6)) for k, v in stats.items())))
            for kind, stats in sorted(self.mttr.items())
        )
        return (
            self.seed,
            self.faults_applied,
            self.fault_kinds,
            tuple(str(v) for v in self.all_violations),
            mttr_items,
            self.final_active,
            self.final_name_counts,
            self.control_bytes,
            round(self.sim_time, 6),
        )


def run_chaos_scenario(
    seed: int = 0,
    n_inrs: int = 6,
    n_services: int = 4,
    chaos_duration: float = 30.0,
    crash_fraction: float = 0.3,
    flap_fraction: float = 0.2,
    restart_after: Optional[float] = 8.0,
    dsr_failover: bool = True,
    link_fault_fraction: float = 0.2,
    config: Optional[InrConfig] = None,
    invariant_interval: float = 1.0,
    settle: float = 3.0,
) -> ChaosReport:
    """Run the standard chaos scenario and return its report.

    The domain gets one warm DSR replica, ``n_inrs`` resolvers and
    ``n_services`` services round-robined across them. The fault plan
    is generated from ``seed`` over the overlay's mutual peer edges and
    the service attachment links, so every fault hits a link or node
    that actually carries protocol traffic.
    """
    config = config or fast_chaos_config()
    domain = InsDomain(
        seed=seed,
        config=config,
        dsr_registration_lifetime=3.0 * config.heartbeat_interval,
        dsr_sweep_interval=max(0.5, config.heartbeat_interval / 2.0),
    )
    domain.add_dsr_replica()
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    for index in range(n_services):
        domain.add_service(
            f"[service=chaos[id={index}]]",
            resolver=inrs[index % n_inrs],
            refresh_interval=config.refresh_interval,
            lifetime=config.record_lifetime,
        )
    domain.run(settle)

    # Fault surface: overlay edges plus each service's resolver link.
    link_pairs = set()
    for inr in domain.live_inrs:
        for neighbor in inr.neighbors.addresses:
            link_pairs.add(tuple(sorted((inr.address, neighbor))))
    for service in domain.services:
        if service.resolver is not None:
            link_pairs.add(tuple(sorted((service.address, service.resolver))))

    plan = FaultPlan.random(
        seed=seed,
        inr_addresses=[inr.address for inr in inrs],
        link_pairs=sorted(link_pairs),
        duration=chaos_duration,
        crash_fraction=crash_fraction,
        flap_fraction=flap_fraction,
        restart_after=restart_after,
        dsr_failover=dsr_failover,
        link_fault_fraction=link_fault_fraction,
    )
    tracker = RecoveryTracker(domain, poll_interval=0.25)
    checker = InvariantChecker(domain).install(invariant_interval)
    controller = ChaosController(domain, tracker=tracker)
    controller.execute(plan)

    domain.run(chaos_duration)
    bound = checker.convergence_bound()
    domain.run(bound)
    checker.uninstall()
    tracker.stop()
    converged = checker.check_converged()

    return ChaosReport(
        seed=seed,
        faults_applied=len(controller.applied),
        fault_kinds=plan.kinds,
        violations=list(checker.violations),
        converged_violations=converged,
        invariant_samples=checker.samples_taken,
        mttr=tracker.mttr_summary(),
        final_active=domain.dsr.active_inrs,
        final_name_counts=tuple(
            (inr.address, inr.name_count()) for inr in domain.live_inrs
        ),
        control_bytes=sum(link.stats.bytes for _pair, link in domain.network.links),
        sim_time=domain.now,
    )


# ----------------------------------------------------------------------
# Recovery-time ablation (refresh interval / neighbor timeout sweep)
# ----------------------------------------------------------------------
@dataclass
class RecoveryAblationRow:
    """One sweep point of the recovery ablation."""

    refresh_interval: float
    neighbor_timeout: float
    crash_detect_p100: float
    crash_mttr_p50: float
    crash_mttr_p100: float
    failover_mttr_p100: float
    control_bytes_per_second: float
    violations: int


def run_recovery_ablation(
    sweep: Tuple[Tuple[float, float], ...] = ((1.0, 3.0), (2.0, 6.0), (4.0, 12.0)),
    seed: int = 7,
    n_inrs: int = 5,
    n_services: int = 3,
    chaos_duration: float = 25.0,
) -> List[RecoveryAblationRow]:
    """Sweep (refresh interval, neighbor timeout) against recovery time
    and bandwidth.

    The expected shape: slower soft-state clocks cut control bandwidth
    roughly proportionally but stretch every recovery path — crashed
    resolvers linger on peers until the neighbor timeout, and restarted
    ones wait a full refresh for their names to come back.
    """
    rows = []
    for refresh_interval, neighbor_timeout in sweep:
        report = run_chaos_scenario(
            seed=seed,
            n_inrs=n_inrs,
            n_services=n_services,
            chaos_duration=chaos_duration,
            config=fast_chaos_config(refresh_interval, neighbor_timeout),
            dsr_failover=True,
        )
        crash = report.mttr.get("crash-inr", {})
        failover = report.mttr.get("dsr-failover", {})
        rows.append(
            RecoveryAblationRow(
                refresh_interval=refresh_interval,
                neighbor_timeout=neighbor_timeout,
                crash_detect_p100=crash.get("detect_p100", float("nan")),
                crash_mttr_p50=crash.get("p50", float("nan")),
                crash_mttr_p100=crash.get("p100", float("nan")),
                failover_mttr_p100=failover.get("p100", float("nan")),
                control_bytes_per_second=report.control_bytes / report.sim_time,
                violations=len(report.all_violations),
            )
        )
    return rows
