"""Chaos harness: scheduled fault plans, invariant checking, MTTR.

The paper argues INS survives failures because *everything* is soft
state (§2.2, §2.4): names expire, neighbors time out, DSR registrations
need heartbeats. This package turns that claim into an executable
test: generate a deterministic fault timeline from a seed
(:class:`FaultPlan`), replay it into a live domain
(:class:`ChaosController`), assert the global invariants the design
promises (:class:`InvariantChecker`), and measure how long every repair
takes (:class:`RecoveryTracker`, :func:`percentile`).

:func:`run_chaos_scenario` wires all four together;
:func:`run_recovery_ablation` sweeps the soft-state clocks against
recovery time and control bandwidth.
"""

from .availability import (
    AvailabilityReport,
    run_availability_scenario,
    write_bench_availability_json,
)
from .delegation import (
    CRASH_PHASES,
    CRASH_ROLES,
    DelegationReport,
    delegation_chaos_config,
    run_delegation_ablation,
    run_delegation_matrix,
    run_delegation_scenario,
    write_bench_delegation_json,
)
from .dtn import (
    DtnReport,
    dtn_chaos_config,
    run_dtn_scenario,
    run_dtn_sweep,
    write_bench_dtn_json,
)
from .invariants import InvariantChecker, Violation
from .plan import FAULT_KINDS, ChaosController, FaultEvent, FaultPlan
from .recovery import RecoveryRecord, RecoveryTracker, percentile
from .scenario import (
    ChaosReport,
    RecoveryAblationRow,
    fast_chaos_config,
    run_chaos_scenario,
    run_recovery_ablation,
)

__all__ = [
    "CRASH_PHASES",
    "CRASH_ROLES",
    "FAULT_KINDS",
    "AvailabilityReport",
    "ChaosController",
    "ChaosReport",
    "DelegationReport",
    "DtnReport",
    "FaultEvent",
    "FaultPlan",
    "InvariantChecker",
    "RecoveryAblationRow",
    "RecoveryRecord",
    "RecoveryTracker",
    "Violation",
    "delegation_chaos_config",
    "dtn_chaos_config",
    "fast_chaos_config",
    "percentile",
    "run_availability_scenario",
    "run_chaos_scenario",
    "run_delegation_ablation",
    "run_delegation_matrix",
    "run_delegation_scenario",
    "run_dtn_scenario",
    "run_dtn_sweep",
    "run_recovery_ablation",
    "write_bench_availability_json",
    "write_bench_dtn_json",
    "write_bench_delegation_json",
]
