"""Deterministic fault plans and the controller that executes them.

A :class:`FaultPlan` is a fixed timeline of fault events — who crashes
when, which links flap, when the DSR fails over — generated up front
from a seed so a chaos run is exactly reproducible: the same seed over
the same topology yields the same timeline, and the simulator's own
seeded RNG makes everything downstream of each fault deterministic too.

:class:`ChaosController` schedules the plan's events into a running
:class:`~repro.experiments.domain.InsDomain`, applies each fault
through the domain's chaos hooks, and (when given a
:class:`~repro.chaos.recovery.RecoveryTracker`) opens a recovery watch
per fault so MTTR can be measured from injection to reconvergence.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.domain import InsDomain
from .recovery import RecoveryTracker

#: Every fault kind the chaos vocabulary knows. "link-down"/"link-up"
#: model a flap of one link; "partition"/"heal" cut whole node groups;
#: "link-faults" turns on the netsim loss/duplication/reordering
#: primitives for a link; "cpu-degrade"/"cpu-restore" slow one node.
FAULT_KINDS = (
    "crash-inr",
    "restart-inr",
    "link-down",
    "link-up",
    "partition",
    "heal",
    "dsr-failover",
    "cpu-degrade",
    "cpu-restore",
    "link-faults",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is an INR/node address for node faults, an ``(a, b)``
    pair for link faults, or two address groups for partitions.
    ``params`` carries kind-specific numbers (rates, factors).
    """

    at: float
    kind: str
    target: object = None
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")

    def param(self, name: str, default: float = 0.0) -> float:
        return dict(self.params).get(name, default)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted fault timeline."""

    events: Tuple[FaultEvent, ...]
    duration: float

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({event.kind for event in self.events}))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def build(cls, events: Sequence[FaultEvent]) -> "FaultPlan":
        ordered = tuple(sorted(events, key=lambda e: (e.at, e.kind, str(e.target))))
        duration = max((e.at for e in ordered), default=0.0)
        return cls(events=ordered, duration=duration)

    # ------------------------------------------------------------------
    # Seed-driven generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        inr_addresses: Sequence[str],
        link_pairs: Sequence[Tuple[str, str]] = (),
        duration: float = 60.0,
        crash_fraction: float = 0.3,
        flap_fraction: float = 0.2,
        restart_after: Optional[float] = 10.0,
        flap_length: float = 8.0,
        dsr_failover: bool = False,
        cpu_degrade_fraction: float = 0.0,
        cpu_degrade_factor: float = 0.25,
        cpu_degrade_length: float = 10.0,
        link_fault_fraction: float = 0.0,
        duplicate_rate: float = 0.1,
        reorder_rate: float = 0.1,
        loss_rate: float = 0.0,
    ) -> "FaultPlan":
        """Generate a deterministic chaos timeline from ``seed``.

        Fault injection times land in the first 60% of ``duration`` so
        every fault has room to be detected and recovered from before
        the run ends. ``restart_after=None`` leaves crashed INRs down.
        """
        rng = random.Random(seed)
        inrs = sorted(inr_addresses)
        links = sorted(tuple(sorted(pair)) for pair in link_pairs)
        window = duration * 0.6
        events: List[FaultEvent] = []

        def pick(population: Sequence, fraction: float) -> List:
            count = min(len(population), math.ceil(len(population) * fraction))
            return rng.sample(population, count) if count else []

        for address in pick(inrs, crash_fraction):
            crash_at = rng.uniform(duration * 0.05, window)
            events.append(FaultEvent(at=crash_at, kind="crash-inr", target=address))
            if restart_after is not None:
                events.append(
                    FaultEvent(
                        at=crash_at + restart_after,
                        kind="restart-inr",
                        target=address,
                    )
                )
        for pair in pick(links, flap_fraction):
            down_at = rng.uniform(duration * 0.05, window)
            events.append(FaultEvent(at=down_at, kind="link-down", target=pair))
            events.append(
                FaultEvent(at=down_at + flap_length, kind="link-up", target=pair)
            )
        if dsr_failover:
            events.append(
                FaultEvent(
                    at=rng.uniform(duration * 0.05, window), kind="dsr-failover"
                )
            )
        for address in pick(inrs, cpu_degrade_fraction):
            slow_at = rng.uniform(duration * 0.05, window)
            events.append(
                FaultEvent(
                    at=slow_at,
                    kind="cpu-degrade",
                    target=address,
                    params=(("factor", cpu_degrade_factor),),
                )
            )
            events.append(
                FaultEvent(
                    at=slow_at + cpu_degrade_length,
                    kind="cpu-restore",
                    target=address,
                )
            )
        for pair in pick(links, link_fault_fraction):
            noisy_at = rng.uniform(duration * 0.05, window)
            events.append(
                FaultEvent(
                    at=noisy_at,
                    kind="link-faults",
                    target=pair,
                    params=(
                        ("duplicate_rate", duplicate_rate),
                        ("reorder_rate", reorder_rate),
                        ("loss_rate", loss_rate),
                    ),
                )
            )
            events.append(
                FaultEvent(
                    at=noisy_at + flap_length,
                    kind="link-faults",
                    target=pair,
                    params=(
                        ("duplicate_rate", 0.0),
                        ("reorder_rate", 0.0),
                        ("loss_rate", 0.0),
                    ),
                )
            )
        plan = cls.build(events)
        return cls(events=plan.events, duration=duration)

    @classmethod
    def duty_cycle(
        cls,
        seed: int,
        link_pairs: Sequence[Tuple[str, str]],
        start: float,
        end: float,
        period: float = 10.0,
        duty: float = 0.5,
        phase_jitter: float = 0.3,
    ) -> "FaultPlan":
        """Duty-cycled links: the disruption-tolerance workload.

        Every link in ``link_pairs`` repeats an up-for-``duty``,
        down-for-the-rest cycle of ``period`` seconds between ``start``
        and ``end`` — the intermittent-connectivity regime (power-cycled
        radios, mobile nodes drifting in and out of range) that custody
        transfer is built for. Each link gets a seed-deterministic phase
        offset of up to ``phase_jitter`` periods so cycles do not
        phase-lock across links. Cycles only begin where the full
        period fits before ``end``, so the last event for every link is
        its ``link-up`` — a plan never strands a link down.
        """
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        if period <= 0 or end <= start:
            raise ValueError("need a positive period and end > start")
        rng = random.Random(seed)
        links = sorted(tuple(sorted(pair)) for pair in link_pairs)
        events: List[FaultEvent] = []
        for pair in links:
            t = start + rng.uniform(0.0, period * phase_jitter)
            while t + period <= end:
                events.append(
                    FaultEvent(
                        at=t + period * duty, kind="link-down", target=pair
                    )
                )
                events.append(
                    FaultEvent(at=t + period, kind="link-up", target=pair)
                )
                t += period
        plan = cls.build(events)
        return cls(events=plan.events, duration=end)


class ChaosController:
    """Executes a :class:`FaultPlan` against one :class:`InsDomain`."""

    def __init__(
        self,
        domain: InsDomain,
        tracker: Optional[RecoveryTracker] = None,
    ) -> None:
        self.domain = domain
        self.tracker = tracker
        #: every fault applied so far, in application order
        self.applied: List[FaultEvent] = []
        self._pristine_cpu_speed: Dict[str, float] = {}
        #: crash targets with a restart later in the plan, so the crash
        #: watch can demand full resurrection rather than clean removal
        self._will_restart: set = set()

    def execute(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` into the simulator.

        Plan times are relative: an event with ``at=5`` fires five
        virtual seconds after ``execute`` is called, so the same plan
        replays identically no matter how long setup took."""
        self._will_restart |= {
            event.target for event in plan if event.kind == "restart-inr"
        }
        start = self.domain.sim.now
        for event in plan:
            self.domain.sim.at(start + event.at, self._apply, event)

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, "_apply_" + event.kind.replace("-", "_"))
        handler(event)
        self.applied.append(event)

    def _apply_crash_inr(self, event: FaultEvent) -> None:
        inr = self.domain.crash_inr(event.target)
        if self.tracker is not None:
            if event.target in self._will_restart:
                self.tracker.watch_inr_crash_with_restart(inr)
            else:
                self.tracker.watch_inr_crash(inr)

    def _apply_restart_inr(self, event: FaultEvent) -> None:
        self.domain.restart_inr(event.target)

    def _apply_link_down(self, event: FaultEvent) -> None:
        a, b = event.target
        self.domain.network.link(a, b).up = False
        if self.tracker is not None:
            self.tracker.watch_link_flap((a, b))

    def _apply_link_up(self, event: FaultEvent) -> None:
        a, b = event.target
        self.domain.network.link(a, b).up = True

    def _apply_partition(self, event: FaultEvent) -> None:
        side_a, side_b = event.target
        self.domain.network.partition(side_a, side_b)

    def _apply_heal(self, event: FaultEvent) -> None:
        side_a, side_b = event.target
        self.domain.network.heal(side_a, side_b)

    def _apply_dsr_failover(self, event: FaultEvent) -> None:
        self.domain.fail_over_dsr()
        if self.tracker is not None:
            self.tracker.watch_dsr_failover()

    def _apply_cpu_degrade(self, event: FaultEvent) -> None:
        cpu = self.domain.network.node(event.target).cpu
        self._pristine_cpu_speed.setdefault(event.target, cpu.speed)
        cpu.speed = self._pristine_cpu_speed[event.target] * event.param(
            "factor", 0.5
        )

    def _apply_cpu_restore(self, event: FaultEvent) -> None:
        pristine = self._pristine_cpu_speed.pop(event.target, None)
        if pristine is not None:
            self.domain.network.node(event.target).cpu.speed = pristine

    def _apply_link_faults(self, event: FaultEvent) -> None:
        a, b = event.target
        params = dict(event.params)
        self.domain.network.configure_link(
            a,
            b,
            loss_rate=params.get("loss_rate"),
            duplicate_rate=params.get("duplicate_rate"),
            reorder_rate=params.get("reorder_rate"),
        )
