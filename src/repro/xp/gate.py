"""``repro-bench-gate`` — compare a bench artifact against a baseline.

The gate flattens two artifacts of the same family into dotted metric
paths (``suite[3].baseline.metrics.success_rate``), applies per-metric
rules — a tolerance plus a direction saying which way is better — and
fails (exit 1) when any gated metric regressed beyond its tolerance or
disappeared. Families whose numbers are deterministic functions of the
committed specs (the chaos artifacts, the matrix) default to an exact
gate: any drift is a real behavior change, not noise. Wall-clock
families (``fig12-lookup``) default to informational — callers gate
those through explicit rules with honest tolerances, which is exactly
what ``benchmarks/perf_smoke.py`` does.

Pure comparison logic: no clocks, no subprocesses; the only I/O is
reading the two files handed in.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .schema import SchemaError, validate_artifact

DIRECTIONS = ("higher", "lower", "both", "info")


@dataclass(frozen=True)
class MetricRule:
    """How one family of metric paths is judged.

    ``pattern`` is an ``fnmatch`` glob over flattened paths, with one
    adjustment: ``[`` is literal (it introduces list indices in paths,
    not character classes), so ``curve[4].mean_lookup_us`` names that
    exact path and ``curve[*].names_in_tree`` covers every index.
    ``higher``
    / ``lower`` say which direction is *better* (only harmful drift
    beyond ``tolerance`` fails); ``both`` fails on drift in either
    direction; ``info`` reports and never fails. ``tolerance`` is a
    bound on the relative change |current - baseline| / max(|baseline|,
    |current|) — 0.0 is an exact gate.
    """

    pattern: str
    tolerance: float = 0.0
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, not {self.direction!r}"
            )
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")


#: Families measured on the wall clock (or too verbose to exact-gate)
#: are informational unless the caller supplies explicit rules;
#: everything else — deterministic sim metrics — gates exactly.
DEFAULT_FAMILY_RULES: Dict[str, MetricRule] = {
    "fig12-lookup": MetricRule("*", tolerance=0.25, direction="info"),
    "chrome-trace": MetricRule("*", direction="info"),
}
EXACT_RULE = MetricRule("*", tolerance=0.0, direction="both")

#: Stamped outside the run; never part of any comparison.
IGNORED_KEYS = ("generated_at",)


def flatten(payload: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a JSON payload as {dotted.path: value}.
    Strings, booleans and nulls are configuration, not measurements,
    and are not gated."""
    out: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key in payload:
            if key in IGNORED_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(payload[key], path))
    elif isinstance(payload, list):
        for index, element in enumerate(payload):
            out.update(flatten(element, f"{prefix}[{index}]"))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        out[prefix] = float(payload)
    return out


@dataclass
class GateRow:
    """One compared metric path."""

    path: str
    baseline: Optional[float]
    current: Optional[float]
    #: bounded relative change, signed (None when either side missing)
    relative: Optional[float]
    #: "ok" | "regressed" | "improved" | "missing" | "new" | "info"
    status: str
    rule: MetricRule


@dataclass
class GateReport:
    """The verdict of one artifact-vs-baseline comparison."""

    family: str
    rows: List[GateRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[GateRow]:
        return [r for r in self.rows if r.status in ("regressed", "missing")]

    @property
    def improvements(self) -> List[GateRow]:
        return [r for r in self.rows if r.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _relative(baseline: float, current: float) -> float:
    scale = max(abs(baseline), abs(current))
    return (current - baseline) / scale if scale else 0.0


def _path_match(path: str, pattern: str) -> bool:
    """``fnmatch`` with ``[`` made literal: flattened paths use
    ``name[3]`` for list elements, and a rule writing ``curve[4]`` (or
    ``curve[*]``) means that bracketed index, never a character class.
    ``[[]`` is fnmatch's own escape for a literal ``[``."""
    return fnmatchcase(path, pattern.replace("[", "[[]"))


def _match(rules: Sequence[MetricRule], default: MetricRule, path: str) -> MetricRule:
    for rule in rules:
        if _path_match(path, rule.pattern):
            return rule
    return default


def compare_artifacts(
    current: dict,
    baseline: dict,
    rules: Sequence[MetricRule] = (),
    family: str = "",
    default_rule: Optional[MetricRule] = None,
) -> GateReport:
    """Judge ``current`` against ``baseline``. ``rules`` are consulted
    in order, first match wins; paths matching no rule fall to the
    family default (exact for deterministic families)."""
    if default_rule is None:
        default_rule = DEFAULT_FAMILY_RULES.get(family, EXACT_RULE)
    base_flat = flatten(baseline)
    current_flat = flatten(current)
    report = GateReport(family=family)
    for path in sorted(base_flat):
        rule = _match(rules, default_rule, path)
        before = base_flat[path]
        if path not in current_flat:
            status = "info" if rule.direction == "info" else "missing"
            report.rows.append(GateRow(path, before, None, None, status, rule))
            continue
        after = current_flat[path]
        relative = _relative(before, after)
        if rule.direction == "info":
            status = "info"
        elif rule.direction == "both":
            status = "ok" if abs(relative) <= rule.tolerance else "regressed"
        else:
            harmful = -relative if rule.direction == "higher" else relative
            if harmful > rule.tolerance:
                status = "regressed"
            elif -harmful > rule.tolerance:
                status = "improved"
            else:
                status = "ok"
        report.rows.append(
            GateRow(path, before, after, relative, status, rule)
        )
    for path in sorted(set(current_flat) - set(base_flat)):
        rule = _match(rules, default_rule, path)
        report.rows.append(
            GateRow(path, None, current_flat[path], None, "new", rule)
        )
    return report


def render_gate_report(report: GateReport, max_rows: int = 25) -> str:
    """A human-readable delta report: verdict first, then the rows that
    matter (regressions, then improvements), then bookkeeping."""
    lines: List[str] = []
    counts = {"ok": 0, "info": 0, "new": 0}
    for row in report.rows:
        if row.status in counts:
            counts[row.status] += 1
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(
        f"bench-gate [{report.family or 'unknown'}]: {verdict} — "
        f"{len(report.regressions)} regression(s), "
        f"{len(report.improvements)} improvement(s), "
        f"{counts['ok']} within tolerance, {counts['info']} informational, "
        f"{counts['new']} new"
    )

    def cell(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:g}"

    shown = 0
    for title, rows in (
        ("regressions", report.regressions),
        ("improvements", report.improvements),
    ):
        if not rows:
            continue
        lines.append(f"  {title}:")
        for row in rows:
            if shown >= max_rows:
                lines.append(f"    ... ({len(rows)} total, output truncated)")
                break
            drift = (
                f"{row.relative * 100:+.2f}%"
                if row.relative is not None
                else "missing from current artifact"
            )
            bound = (
                f"tolerance {row.rule.tolerance * 100:g}%, "
                f"{row.rule.direction} is better"
                if row.rule.direction in ("higher", "lower")
                else f"tolerance {row.rule.tolerance * 100:g}%"
            )
            lines.append(
                f"    {row.path}: {cell(row.baseline)} -> "
                f"{cell(row.current)} ({drift}; {bound})"
            )
            shown += 1
    return "\n".join(lines)


def parse_rule(text: str) -> MetricRule:
    """``PATTERN=TOLERANCE[:DIRECTION]`` from the command line —
    ``'curve[4].mean_lookup_us=0.2:lower'``."""
    pattern, _, spec = text.partition("=")
    if not pattern or not spec:
        raise ValueError(
            f"metric rule {text!r} must look like PATTERN=TOLERANCE[:DIRECTION]"
        )
    tolerance_text, _, direction = spec.partition(":")
    try:
        tolerance = float(tolerance_text)
    except ValueError:
        raise ValueError(f"metric rule {text!r}: bad tolerance {tolerance_text!r}")
    return MetricRule(pattern, tolerance, direction or "both")


def _load(path: Union[str, Path], check_schema: bool) -> Tuple[dict, str]:
    with open(path) as handle:
        payload = json.load(handle)
    family = ""
    if check_schema:
        family = validate_artifact(path, payload)
    elif isinstance(payload, dict):
        family = str(payload.get("benchmark", ""))
    return payload, family


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-gate",
        description=(
            "Compare a BENCH_*.json artifact against a committed "
            "baseline; exit 1 on any regression beyond tolerance."
        ),
    )
    parser.add_argument("current", help="freshly produced artifact")
    parser.add_argument("baseline", help="committed baseline artifact")
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="PATTERN=TOL[:DIR]",
        help=(
            "per-metric rule, first match wins; DIR is higher|lower|"
            "both|info (default both). May repeat."
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "override the default tolerance for paths no --metric rule "
            "matches (direction 'both')"
        ),
    )
    parser.add_argument(
        "--no-schema-check",
        action="store_true",
        help="skip artifact schema validation before comparing",
    )
    parser.add_argument("--max-rows", type=int, default=25)
    args = parser.parse_args(argv)

    try:
        rules = [parse_rule(text) for text in args.metric]
    except ValueError as error:
        print(f"bench-gate: {error}", file=sys.stderr)
        return 2
    try:
        current, family = _load(args.current, not args.no_schema_check)
        baseline, base_family = _load(args.baseline, not args.no_schema_check)
    except (OSError, json.JSONDecodeError, SchemaError) as error:
        print(f"bench-gate: {error}", file=sys.stderr)
        return 2
    if family and base_family and family != base_family:
        print(
            f"bench-gate: family mismatch — current is {family!r}, "
            f"baseline is {base_family!r}",
            file=sys.stderr,
        )
        return 2
    default_rule = (
        MetricRule("*", args.tolerance, "both")
        if args.tolerance is not None
        else None
    )
    report = compare_artifacts(
        current, baseline, rules, family=family, default_rule=default_rule
    )
    print(render_gate_report(report, max_rows=args.max_rows))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
