"""Declarative experiment specifications with content-hashed run IDs.

An :class:`ExperimentSpec` is the entire identity of an engine run: the
workload name, the seed, the named component toggles that form the
baseline configuration, and the workload's scale parameters. Two specs
with equal canonical forms have equal run IDs; any field change — a
different seed, a flipped toggle, a new parameter — yields a new ID.
Run IDs are therefore stable across sessions, machines and Python
versions, and an artifact can always be traced back to the exact
configuration that produced it.

This module is pure data: no clocks, no randomness, no I/O beyond
hashing. The lint profile pins the wall-clock ban.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: The named component toggles an :class:`ExperimentSpec` may carry.
#: Each names one separable piece of machinery grown on top of the
#: paper's base system; ablating it measures what the component buys.
TOGGLES: Dict[str, str] = {
    "lookup_memo": (
        "LOOKUP-NAME memo: epoch-invalidated LRU of canonical query "
        "keys on the name-tree"
    ),
    "subtree_index": (
        "incrementally-maintained per-value-node subtree aggregates "
        "(wild-card unions become dictionary copies)"
    ),
    "packet_cache": (
        "INR packet caching of intentionally-named data (Section 3.2)"
    ),
    "resilience": (
        "client request resilience: retries/backoff, deadlines, "
        "automatic failover"
    ),
    "admission_control": (
        "INR admission control: bounded pending-work queue with "
        "priority shedding and explicit Pushback"
    ),
    "custody": (
        "disruption-tolerant custody store-and-forward for late-binding "
        "anycast (PROTOCOL.md §10)"
    ),
    "delegation_two_phase": (
        "crash-safe two-phase vspace handoff (OFFER/ACCEPT/TRANSFER/"
        "COMMIT) instead of the single-shot transfer"
    ),
    "obs_tracing": (
        "hop-by-hop span tracing carried in the header flag-bit "
        "extension (adds trace-context wire bytes)"
    ),
    "load_balancing": (
        "Section 2.5 spawn/terminate and vspace-delegation load policy"
    ),
    "delivery_artifact": (
        "the paper's Figure-15 delivery-code artifact: local delivery "
        "cost linear in the vspace's name count"
    ),
}

#: Bump when the canonical form of a spec changes incompatibly (run IDs
#: embed it, so old and new IDs can never collide silently).
SPEC_VERSION = 1


class SpecError(ValueError):
    """An :class:`ExperimentSpec` field failed validation."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: workload + seed + toggles + params.

    ``toggles`` holds the *baseline* value of every component the
    experiment controls; the runner produces one additional ablated run
    per toggle by flipping it. ``params`` are workload scale knobs
    (name counts, durations, client counts) — part of the identity, so
    a reduced-scale CI run and a full-scale run never share an ID.
    """

    name: str
    workload: str
    seed: int = 0
    toggles: Mapping[str, bool] = field(default_factory=dict)
    params: Mapping[str, object] = field(default_factory=dict)
    #: restrict which toggles this spec ablates; empty = every toggle
    #: the workload honors. Lets a spec exist to measure one component
    #: under special conditions without re-ablating everything else.
    ablations: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("spec needs a non-empty name")
        if not self.workload or not isinstance(self.workload, str):
            raise SpecError(f"spec {self.name!r} needs a workload")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError(f"spec {self.name!r}: seed must be an int")
        for toggle, value in self.toggles.items():
            if toggle not in TOGGLES:
                raise SpecError(
                    f"spec {self.name!r}: unknown toggle {toggle!r} "
                    f"(known: {', '.join(sorted(TOGGLES))})"
                )
            if not isinstance(value, bool):
                raise SpecError(
                    f"spec {self.name!r}: toggle {toggle!r} must be a bool"
                )
        for toggle in self.ablations:
            if toggle not in TOGGLES:
                raise SpecError(
                    f"spec {self.name!r}: unknown ablation toggle {toggle!r}"
                )
        object.__setattr__(
            self, "ablations", tuple(sorted(set(self.ablations)))
        )
        # Freeze the mappings so a frozen spec is deep-immutable in
        # practice (dataclass frozen= only guards rebinding).
        object.__setattr__(self, "toggles", dict(sorted(self.toggles.items())))
        object.__setattr__(self, "params", dict(sorted(self.params.items())))

    # ------------------------------------------------------------------
    # Canonical form and run IDs
    # ------------------------------------------------------------------
    def canonical_dict(self, ablate: Optional[str] = None) -> dict:
        """The spec as plain sorted data — the hashed identity.

        ``ablate`` names a toggle flipped relative to the baseline;
        ablated runs hash to their own IDs without constructing a
        whole new spec.
        """
        toggles = dict(self.toggles)
        if ablate is not None:
            if ablate not in TOGGLES:
                raise SpecError(
                    f"spec {self.name!r}: cannot ablate unknown toggle "
                    f"{ablate!r}"
                )
            # The ``ablate`` field itself is part of the hashed identity,
            # so the ID is distinct even when the spec leaves the toggle
            # at the workload default rather than pinning it.
            if ablate in toggles:
                toggles[ablate] = not toggles[ablate]
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "workload": self.workload,
            "seed": self.seed,
            "toggles": toggles,
            "params": self.params,
            "ablations": list(self.ablations),
            "ablate": ablate,
        }

    def canonical_json(self, ablate: Optional[str] = None) -> str:
        """Canonical JSON: sorted keys, tight separators, no floats
        reformatted — equal specs serialize byte-identically."""
        return json.dumps(
            self.canonical_dict(ablate),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )

    def run_id(self, ablate: Optional[str] = None) -> str:
        """Content-hashed run ID, stable across sessions and hosts."""
        digest = hashlib.sha256(
            self.canonical_json(ablate).encode("ascii")
        ).hexdigest()
        return f"xp-{digest[:16]}"

    def effective_toggles(self, ablate: Optional[str] = None) -> Dict[str, bool]:
        """The toggle values one run actually executes under."""
        return dict(self.canonical_dict(ablate)["toggles"])
