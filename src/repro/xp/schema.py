"""Versioned validation schemas for every ``BENCH_*.json`` artifact.

Benchmarks in this repository leave machine-readable artifacts under
``benchmarks/results/``; downstream sessions, the CI gate and trend
tooling all parse them. This module pins what each artifact family must
look like — one schema per ``benchmark`` discriminator value, plus
filename-keyed families for the raw metrics snapshots and Chrome
traces — and a tier-1 test validates every committed file against it,
so a writer change that silently reshapes an artifact fails the suite
instead of breaking a consumer three sessions later.

The validator is deliberately structural, not exhaustive: it checks the
discriminator, the schema version, the load-bearing fields and their
types, and tolerates extra keys (artifacts may grow). Checks are pure
predicates — no clocks, no I/O beyond reading the file handed in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

RUN_ID_PREFIX = "xp-"


class SchemaError(ValueError):
    """An artifact does not satisfy its family's schema."""


Check = Callable[[object, str], None]


def _fail(where: str, message: str) -> None:
    raise SchemaError(f"{where}: {message}")


def number(value: object, where: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(where, f"expected a number, got {type(value).__name__}")


def integer(value: object, where: str) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(where, f"expected an integer, got {type(value).__name__}")


def string(value: object, where: str) -> None:
    if not isinstance(value, str):
        _fail(where, f"expected a string, got {type(value).__name__}")


def boolean(value: object, where: str) -> None:
    if not isinstance(value, bool):
        _fail(where, f"expected a boolean, got {type(value).__name__}")


def anything(value: object, where: str) -> None:
    return None


def run_id(value: object, where: str) -> None:
    string(value, where)
    body = str(value)[len(RUN_ID_PREFIX):]
    if not str(value).startswith(RUN_ID_PREFIX) or len(body) != 16 or any(
        c not in "0123456789abcdef" for c in body
    ):
        _fail(where, f"expected an {RUN_ID_PREFIX}<16 hex> run id, got {value!r}")


def list_of(item: Check, min_items: int = 0) -> Check:
    def check(value: object, where: str) -> None:
        if not isinstance(value, list):
            _fail(where, f"expected a list, got {type(value).__name__}")
        if len(value) < min_items:
            _fail(where, f"expected at least {min_items} items, got {len(value)}")
        for index, element in enumerate(value):
            item(element, f"{where}[{index}]")

    return check


def mapping_of(item: Check) -> Check:
    def check(value: object, where: str) -> None:
        if not isinstance(value, dict):
            _fail(where, f"expected an object, got {type(value).__name__}")
        for key in sorted(value):
            if not isinstance(key, str):
                _fail(where, f"non-string key {key!r}")
            item(value[key], f"{where}.{key}")

    return check


def obj(
    required: Optional[Mapping[str, Check]] = None,
    optional: Optional[Mapping[str, Check]] = None,
) -> Check:
    """An object with at least ``required`` fields; extra keys are
    allowed (artifacts may grow), ``optional`` fields are checked when
    present."""

    def check(value: object, where: str) -> None:
        if not isinstance(value, dict):
            _fail(where, f"expected an object, got {type(value).__name__}")
        for key, field_check in sorted((required or {}).items()):
            if key not in value:
                _fail(where, f"missing required field {key!r}")
            field_check(value[key], f"{where}.{key}")
        for key, field_check in sorted((optional or {}).items()):
            if key in value:
                field_check(value[key], f"{where}.{key}")

    return check


# ----------------------------------------------------------------------
# Shared fragments
# ----------------------------------------------------------------------
#: One histogram series as the obs registry snapshots it — the
#: deterministic p50/p95/p99 summary is part of the contract.
histogram_series = obj(required={
    "buckets": mapping_of(number),
    "count": number,
    "sum": number,
    "quantiles": obj(required={"p50": number, "p95": number, "p99": number}),
})

#: A full ``MetricsRegistry.snapshot()`` payload.
metrics_snapshot = obj(required={
    "counters": mapping_of(mapping_of(number)),
    "gauges": mapping_of(mapping_of(number)),
    "histograms": mapping_of(mapping_of(histogram_series)),
})

#: The ``observability`` block chaos/experiment writers embed.
observability_payload = obj(
    required={"span_summary": anything},
    optional={"metrics": metrics_snapshot},
)

_availability_report = obj(required={
    "success_rate": number,
    "requests_attempted": number,
    "requests_succeeded": number,
    "requests_hung": number,
    "latency_p50": number,
    "latency_p99": number,
    "resilience": boolean,
    "fault_kinds": list_of(string),
})

_dtn_report = obj(required={
    "custody": boolean,
    "delivery_ratio": number,
    "messages_sent": number,
    "messages_delivered": number,
    "latency_p50": number,
    "latency_max": number,
})

_delegation_report = obj(required={
    "two_phase": boolean,
    "window_success_rate": number,
    "success_rate": number,
    "lost_records": number,
    "authority": list_of(string),
})

_matrix_result = obj(
    required={"metrics": mapping_of(number)},
    optional={
        "timings": mapping_of(number),
        "observability": obj(required={"span_summary": anything}),
    },
)

_matrix_ablation = obj(
    required={
        "metrics": mapping_of(number),
        "run_id": run_id,
        "deltas": mapping_of(obj(required={
            "baseline": number,
            "ablated": number,
            "delta": number,
            "relative": number,
        })),
    },
    optional={
        "primary": obj(required={
            "metric": string,
            "direction": string,
            "importance": number,
        }),
    },
)


# ----------------------------------------------------------------------
# Artifact families, keyed by the ``benchmark`` discriminator
# ----------------------------------------------------------------------
#: family name -> (expected schema_version, payload check)
ARTIFACT_SCHEMAS: Dict[str, Tuple[int, Check]] = {
    "fig12-lookup": (2, obj(required={
        "curve": list_of(obj(required={
            "names_in_tree": number,
            "lookups_per_second": number,
            "mean_lookup_us": number,
        }), min_items=1),
        "memo_ablation": obj(required={
            "names_in_tree": number,
            "distinct_queries": number,
            "lookups": number,
            "uncached_lookups_per_second": number,
            "cached_lookups_per_second": number,
            "speedup": number,
            "memo_hits": number,
            "memo_misses": number,
            "memo_invalidations": number,
        }),
        "update_ingestion": obj(required={
            "names_in_tree": number,
            "updates_applied": number,
            "legacy_updates_per_second": number,
            "batched_updates_per_second": number,
            "speedup": number,
        }),
    })),
    "availability-chaos": (1, obj(required={
        "resilience_on": _availability_report,
        "resilience_off": _availability_report,
        "success_rate_delta": number,
        "observability": mapping_of(observability_payload),
    })),
    "dtn-chaos": (1, obj(required={
        "rows": list_of(obj(required={
            "disruption": number,
            "delivery_ratio_delta": number,
            "custody_on": _dtn_report,
            "custody_off": _dtn_report,
        }), min_items=1),
        "observability": mapping_of(observability_payload),
    })),
    "delegation-chaos": (1, obj(required={
        "matrix": list_of(_delegation_report, min_items=1),
        "ablation": obj(required={
            "two_phase": _delegation_report,
            "ablated": _delegation_report,
            "lost_records_delta": number,
            "window_success_delta": number,
        }),
        "observability": mapping_of(observability_payload),
    })),
    "fig14-discovery-time": (1, obj(required={
        "rows": list_of(obj(required={
            "hops": number,
            "discovery_ms": number,
        }), min_items=2),
        "slope_ms_per_hop": number,
        "observability": observability_payload,
    })),
    "fig15-routing-burst": (1, obj(required={
        "rows": list_of(obj(required={
            "names_in_vspace": number,
            "local_ms": number,
            "remote_same_vspace_ms": number,
            "remote_other_vspace_ms": number,
        }), min_items=1),
        "observability": observability_payload,
    })),
    "xp-matrix": (1, obj(
        required={
            "engine": obj(required={"toggles": mapping_of(string)}),
            "suite": list_of(obj(required={
                "name": string,
                "workload": string,
                "seed": integer,
                "run_id": run_id,
                "params": anything,
                "toggles": mapping_of(boolean),
                "baseline": _matrix_result,
                "ablations": mapping_of(_matrix_ablation),
            }), min_items=1),
            "importance_ranking": list_of(obj(required={
                "component": string,
                "importance": number,
                "workload": string,
                "spec": string,
                "metric": string,
                "direction": string,
                "baseline": number,
                "ablated": number,
            })),
        },
        optional={"generated_at": string},
    )),
}

#: Filename-suffix families for artifacts without a discriminator.
SUFFIX_SCHEMAS: Dict[str, Tuple[str, Check]] = {
    "_metrics.json": ("metrics-snapshot", metrics_snapshot),
    "_trace.json": ("chrome-trace", obj(required={
        "traceEvents": list_of(anything),
        "displayTimeUnit": string,
    })),
}


def validate_artifact(
    path: Union[str, Path], payload: Optional[dict] = None
) -> str:
    """Validate one artifact file (or a pre-loaded payload standing in
    for it) and return the family name it matched. Raises
    :class:`SchemaError` on any mismatch, including an unknown family —
    new artifact kinds must register a schema here."""
    path = Path(path)
    if payload is None:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise SchemaError(f"{path.name}: not valid JSON ({error})")
    for suffix, (family, check) in SUFFIX_SCHEMAS.items():
        if path.name.endswith(suffix):
            check(payload, path.name)
            return family
    if not isinstance(payload, dict):
        _fail(path.name, "expected a top-level JSON object")
    family = payload.get("benchmark")
    if family not in ARTIFACT_SCHEMAS:
        _fail(
            path.name,
            f"unknown benchmark family {family!r} "
            f"(known: {', '.join(sorted(ARTIFACT_SCHEMAS))})",
        )
    expected_version, check = ARTIFACT_SCHEMAS[family]
    version = payload.get("schema_version")
    if version != expected_version:
        _fail(
            path.name,
            f"family {family!r} expects schema_version "
            f"{expected_version}, found {version!r}",
        )
    check(payload, path.name)
    return str(family)


def validate_results_dir(results_dir: Union[str, Path]) -> Dict[str, str]:
    """Validate every ``*.json`` artifact in a results directory.
    Returns {filename: family}; raises on the first invalid file."""
    results_dir = Path(results_dir)
    validated: Dict[str, str] = {}
    for path in sorted(results_dir.glob("*.json")):
        validated[path.name] = validate_artifact(path)
    return validated
