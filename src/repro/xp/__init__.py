"""``repro.xp`` — the unified experiment engine.

Every benchmark and ablation in this repository is *data*: an
:class:`~.spec.ExperimentSpec` names a registered workload, a seed, a
set of named component toggles (the baseline configuration) and the
workload's scale parameters. The :mod:`~.runner` executes the baseline
plus one ablated run per toggle the workload honors, ingesting
:mod:`repro.obs` metrics uniformly; :mod:`~.report` folds a suite of
such runs into one schema-versioned ``BENCH_matrix.json`` with
baseline-vs-ablated deltas and a per-component importance ranking.

Around the engine sit two data contracts:

- :mod:`~.schema` — the versioned validation schema every
  ``BENCH_*.json`` artifact under ``benchmarks/results/`` must satisfy
  (a tier-1 test enforces it);
- :mod:`~.gate` — the ``repro-bench-gate`` console tool that compares a
  freshly produced artifact against a committed baseline and fails on
  regressions beyond per-metric tolerances.

Layering: spec/report/schema/gate code is pure (wall-clock forbidden by
the lint profile — reports must be byte-reproducible); only the runner
side (:mod:`~.runner`, :mod:`~.workloads`, :mod:`~.cli`) may read the
host clock, and only for the optional wall-clock ``timings`` section.
"""

from .gate import GateReport, MetricRule, compare_artifacts, render_gate_report
from .report import build_matrix_report, write_bench_matrix_json
from .runner import SpecRun, Workload, WorkloadResult, run_spec, run_suite
from .schema import (
    SchemaError,
    validate_artifact,
    validate_results_dir,
)
from .spec import TOGGLES, ExperimentSpec
from .workloads import WORKLOADS, default_suite

__all__ = [
    "ExperimentSpec",
    "TOGGLES",
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "SpecRun",
    "run_spec",
    "run_suite",
    "default_suite",
    "build_matrix_report",
    "write_bench_matrix_json",
    "SchemaError",
    "validate_artifact",
    "validate_results_dir",
    "MetricRule",
    "GateReport",
    "compare_artifacts",
    "render_gate_report",
]
