"""The matrix runner: baseline × ablated execution of one spec.

A :class:`Workload` adapts one benchmark or chaos scenario to the
engine: given a spec's params, a seed and concrete toggle values, it
runs the experiment and returns a :class:`WorkloadResult` whose
``metrics`` are **deterministic** (simulated time, counters, ratios —
anything that is a pure function of the spec) and whose ``timings``
are wall-clock measurements (collected only when asked, and kept out
of the deterministic report body). Workloads register themselves in
:data:`WORKLOADS` at import time; :mod:`.workloads` populates the
registry with every migrated benchmark.

:func:`run_spec` executes the baseline configuration plus one run per
toggle the workload honors with that toggle flipped — the full ablation
matrix for the spec. Determinism contract: two calls with the same
spec and ``timing=False`` produce equal results, which is what the
byte-identical ``BENCH_matrix.json`` test pins.

This is the only engine module (with :mod:`.workloads` and :mod:`.cli`)
whose lint profile permits the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .spec import TOGGLES, ExperimentSpec, SpecError

#: A rendered result table: (title, headers, rows). The runner writes
#: these under their historical ``benchmarks/results/*.txt`` names.
Table = Tuple[str, Sequence[str], List[Sequence[str]]]


@dataclass
class WorkloadResult:
    """What one configuration of one workload measured.

    ``metrics`` must be a deterministic function of (params, toggles,
    seed); ``timings`` may read the host clock and is only populated
    when the run was invoked with ``timing=True``. ``details`` carries
    workload-native result objects (dataclasses, row lists) for
    migrated bench drivers that keep their own assertions and artifact
    writers; it never enters the matrix report. ``collector`` is the
    :class:`repro.obs.ObsCollector` of an observed run, if any.
    """

    metrics: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    tables: List[Table] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)
    collector: Optional[object] = None


#: run(params, toggles, seed, timing) -> WorkloadResult
WorkloadFn = Callable[
    [Mapping[str, object], Mapping[str, bool], int, bool], WorkloadResult
]


@dataclass(frozen=True)
class Workload:
    """One engine-runnable experiment family."""

    id: str
    description: str
    #: the component toggles this workload responds to (ablation axes)
    toggles: Tuple[str, ...]
    #: toggle -> (metric name, direction). The metric a toggle's
    #: importance is judged on; direction is "higher" or "lower"
    #: (which way is better). Metrics named here must be deterministic.
    primary_metrics: Mapping[str, Tuple[str, str]]
    run: WorkloadFn
    #: baseline toggle values when a spec does not say otherwise
    default_toggles: Mapping[str, bool] = field(default_factory=dict)
    #: optional ``f(spec_run) -> [Table]`` producing the historical
    #: cross-run comparison tables (``ablation__*.txt``) for this
    #: workload; tables that need wall-clock numbers must return []
    #: when ``spec_run.timing`` is False.
    suite_tables: Optional[Callable[["SpecRun"], List[Table]]] = None

    def __post_init__(self) -> None:
        for toggle in self.toggles:
            if toggle not in TOGGLES:
                raise SpecError(
                    f"workload {self.id!r} declares unknown toggle {toggle!r}"
                )
            if toggle not in self.primary_metrics:
                raise SpecError(
                    f"workload {self.id!r} has no primary metric for "
                    f"toggle {toggle!r}"
                )
        for toggle, (_, direction) in self.primary_metrics.items():
            if direction not in ("higher", "lower"):
                raise SpecError(
                    f"workload {self.id!r}, toggle {toggle!r}: direction "
                    f"must be 'higher' or 'lower', not {direction!r}"
                )


WORKLOADS: Dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    if workload.id in WORKLOADS:
        raise SpecError(f"workload {workload.id!r} registered twice")
    WORKLOADS[workload.id] = workload
    return workload


def baseline_toggles(
    workload: Workload, spec: ExperimentSpec
) -> Dict[str, bool]:
    """The concrete baseline toggle values a spec runs under: the
    workload defaults (all-on unless declared otherwise) overridden by
    whatever the spec pins explicitly."""
    values = {
        toggle: bool(workload.default_toggles.get(toggle, True))
        for toggle in workload.toggles
    }
    for toggle, value in spec.toggles.items():
        if toggle in values:
            values[toggle] = value
    return values


@dataclass
class SpecRun:
    """The executed matrix of one spec: baseline + per-toggle ablations."""

    spec: ExperimentSpec
    baseline: WorkloadResult
    #: toggle name -> result of the run with that toggle flipped
    ablations: Dict[str, WorkloadResult]
    #: concrete baseline toggle values the runs were derived from
    toggles: Dict[str, bool]
    timing: bool


def run_spec(spec: ExperimentSpec, timing: bool = False) -> SpecRun:
    """Execute one spec's full baseline × ablated matrix."""
    workload = WORKLOADS.get(spec.workload)
    if workload is None:
        raise SpecError(
            f"spec {spec.name!r} names unknown workload {spec.workload!r} "
            f"(known: {', '.join(sorted(WORKLOADS))})"
        )
    base = baseline_toggles(workload, spec)
    baseline = workload.run(spec.params, dict(base), spec.seed, timing)
    to_ablate = workload.toggles
    if spec.ablations:
        unknown = set(spec.ablations) - set(workload.toggles)
        if unknown:
            raise SpecError(
                f"spec {spec.name!r} asks to ablate "
                f"{', '.join(sorted(unknown))}, which workload "
                f"{workload.id!r} does not honor"
            )
        to_ablate = tuple(t for t in workload.toggles if t in spec.ablations)
    ablations: Dict[str, WorkloadResult] = {}
    for toggle in to_ablate:
        flipped = dict(base)
        flipped[toggle] = not flipped[toggle]
        ablations[toggle] = workload.run(
            spec.params, flipped, spec.seed, timing
        )
    return SpecRun(
        spec=spec,
        baseline=baseline,
        ablations=ablations,
        toggles=base,
        timing=timing,
    )


def run_suite(
    specs: Sequence[ExperimentSpec], timing: bool = False
) -> List[SpecRun]:
    """Execute a suite of specs in order (deterministically)."""
    seen = set()
    for spec in specs:
        run_id = spec.run_id()
        if run_id in seen:
            raise SpecError(f"suite contains duplicate spec {spec.name!r}")
        seen.add(run_id)
    return [run_spec(spec, timing=timing) for spec in specs]
