"""Matrix reports: baseline-vs-ablated deltas and importance ranking.

Pure report assembly — no clocks, no randomness. Everything in the
payload is a deterministic function of the executed
:class:`~.runner.SpecRun` list, so two runs of the same suite write
byte-identical ``BENCH_matrix.json`` files; the optional timestamp is
stamped by the caller (the CLI) *outside* the run, via the
``generated_at`` argument.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .runner import SpecRun, Table, WORKLOADS

#: Version of the ``BENCH_matrix.json`` artifact layout.
MATRIX_SCHEMA_VERSION = 1


def _round(value: float) -> float:
    """Stable rounding for derived ratios (raw metrics stay raw)."""
    return round(value, 6)


def metric_deltas(
    baseline: Dict[str, float], ablated: Dict[str, float]
) -> Dict[str, dict]:
    """Per-metric baseline-vs-ablated deltas over the shared keys."""
    deltas: Dict[str, dict] = {}
    for key in sorted(set(baseline) & set(ablated)):
        before, after = baseline[key], ablated[key]
        if isinstance(before, bool) or isinstance(after, bool):
            before, after = float(before), float(after)
        scale = max(abs(before), abs(after))
        deltas[key] = {
            "baseline": before,
            "ablated": after,
            "delta": _round(after - before),
            # Bounded relative delta in [-1, 1]: |a - b| / max(|a|, |b|)
            # signed by the direction of change, defined even when the
            # baseline is exactly zero (fully-saved work, say).
            "relative": _round((after - before) / scale) if scale else 0.0,
        }
    return deltas


def importance(
    baseline: float, ablated: float, direction: str
) -> float:
    """Oriented, bounded importance of one component on one metric.

    Positive: removing the component made the metric *worse* (the
    component helps). Negative: removing it made the metric better —
    the component is overhead on this metric (observability tracing on
    a latency slope, say), which is exactly what an honest ablation
    should surface. Normalized by max(|baseline|, |ablated|), so the
    value is in [-1, 1] and defined when the baseline is zero.
    """
    scale = max(abs(baseline), abs(ablated))
    if not scale:
        return 0.0
    harm = (baseline - ablated) if direction == "higher" else (ablated - baseline)
    return _round(harm / scale)


def build_matrix_report(runs: Sequence[SpecRun]) -> dict:
    """Fold executed spec runs into the ``BENCH_matrix.json`` payload."""
    suite: List[dict] = []
    ranking: Dict[str, dict] = {}
    for run in runs:
        workload = WORKLOADS[run.spec.workload]
        entry = {
            "name": run.spec.name,
            "workload": run.spec.workload,
            "seed": run.spec.seed,
            "run_id": run.spec.run_id(),
            "params": dict(run.spec.params),
            "toggles": dict(run.toggles),
            "baseline": _result_section(run.baseline, run.timing),
            "ablations": {},
        }
        for toggle, result in sorted(run.ablations.items()):
            metric, direction = workload.primary_metrics[toggle]
            deltas = metric_deltas(run.baseline.metrics, result.metrics)
            section = _result_section(result, run.timing)
            section["run_id"] = run.spec.run_id(ablate=toggle)
            section["deltas"] = deltas
            score = None
            if metric in run.baseline.metrics and metric in result.metrics:
                score = importance(
                    float(run.baseline.metrics[metric]),
                    float(result.metrics[metric]),
                    direction,
                )
                section["primary"] = {
                    "metric": metric,
                    "direction": direction,
                    "importance": score,
                }
            entry["ablations"][toggle] = section
            if score is None:
                continue
            candidate = {
                "component": toggle,
                "importance": score,
                "workload": run.spec.workload,
                "spec": run.spec.name,
                "metric": metric,
                "direction": direction,
                "baseline": float(run.baseline.metrics[metric]),
                "ablated": float(result.metrics[metric]),
            }
            held = ranking.get(toggle)
            if held is None or abs(score) > abs(held["importance"]):
                ranking[toggle] = candidate
        suite.append(entry)
    ranked = sorted(
        ranking.values(),
        key=lambda row: (-abs(row["importance"]), row["component"]),
    )
    from .spec import TOGGLES  # local to keep module deps acyclic in docs

    return {
        "benchmark": "xp-matrix",
        "schema_version": MATRIX_SCHEMA_VERSION,
        "engine": {
            "toggles": {
                toggle: TOGGLES[toggle]
                for toggle in sorted(
                    {t for run in runs for t in run.ablations}
                )
            },
        },
        "suite": suite,
        "importance_ranking": ranked,
    }


def _result_section(result, timing: bool) -> dict:
    section: dict = {"metrics": _plain_metrics(result.metrics)}
    if timing and result.timings:
        section["timings"] = _plain_metrics(result.timings)
    if result.collector is not None:
        # Uniform obs ingestion: the deterministic span summary (names,
        # counts, sim-time durations) — compact enough for the matrix.
        section["observability"] = {
            "span_summary": result.collector.span_summary(),
        }
    return section


def _plain_metrics(metrics: Dict[str, float]) -> Dict[str, float]:
    return {
        key: (float(value) if isinstance(value, bool) else value)
        for key, value in sorted(metrics.items())
    }


def write_bench_matrix_json(
    path: Union[str, Path],
    payload: dict,
    generated_at: Optional[str] = None,
) -> dict:
    """Write the matrix payload as canonical JSON (sorted keys,
    two-space indent, trailing newline — byte-identical for equal
    payloads). ``generated_at`` is the only non-deterministic field and
    is stamped by the caller, outside the run; ``None`` omits it.
    """
    payload = dict(payload)
    if generated_at is not None:
        payload["generated_at"] = generated_at
    else:
        payload.pop("generated_at", None)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


# ----------------------------------------------------------------------
# Historical text-table artifacts
# ----------------------------------------------------------------------
def table_filename(title: str) -> str:
    """The ``benchmarks/results/`` filename a table title maps to —
    the same slug rule the pre-engine benchmarks used, so migrated
    ablations keep their artifact names. A *trailing* parenthesized
    part carries run-specific numbers and is stripped; interior
    parentheses stay."""
    stem = re.sub(r"\s*\([^()]*\)\s*$", "", title).strip()
    slug = "".join(c if c.isalnum() else "_" for c in stem.lower())
    return f"{slug.strip('_')}.txt"


def format_table(title: str, headers: Sequence[str], rows) -> str:
    """Render one result table exactly as the bench reporter does."""
    headers = [str(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def write_tables(
    runs: Sequence[SpecRun], results_dir: Union[str, Path]
) -> List[str]:
    """Write every table the suite produced under ``results_dir`` and
    return the paths written."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for run in runs:
        workload = WORKLOADS[run.spec.workload]
        tables: List[Table] = list(run.baseline.tables)
        for _, result in sorted(run.ablations.items()):
            tables.extend(result.tables)
        if workload.suite_tables is not None:
            tables.extend(workload.suite_tables(run))
        for title, headers, rows in tables:
            path = results_dir / table_filename(title)
            path.write_text(format_table(title, headers, rows))
            written.append(str(path))
    return written
