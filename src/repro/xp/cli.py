"""``repro-xp`` — run the declarative ablation matrix from the shell.

``repro-xp run`` executes a suite of experiment specs (the committed
default suite unless filtered), writes the schema-versioned
``BENCH_matrix.json`` and, when asked, the historical ablation text
tables. ``repro-xp list`` shows the registered workloads, their
toggles and the committed suite with its stable run ids.

This is the only place a timestamp enters an artifact: the matrix body
is a deterministic function of the specs, and ``--timestamp`` stamps
``generated_at`` *after* the run, so the committed artifact stays
byte-reproducible without it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .report import build_matrix_report, write_bench_matrix_json, write_tables
from .runner import WORKLOADS, run_suite
from .schema import validate_artifact
from .spec import TOGGLES, SpecError
from .workloads import default_suite

DEFAULT_OUT = Path("benchmarks") / "results" / "BENCH_matrix.json"


def _cmd_list() -> int:
    print("workloads:")
    for workload_id in sorted(WORKLOADS):
        workload = WORKLOADS[workload_id]
        print(f"  {workload_id}: {workload.description}")
        for toggle in workload.toggles:
            metric, direction = workload.primary_metrics[toggle]
            print(f"    - {toggle} (primary: {metric}, {direction} is better)")
    print("toggles:")
    for toggle in sorted(TOGGLES):
        print(f"  {toggle}: {TOGGLES[toggle]}")
    print("default suite:")
    for spec in default_suite():
        print(f"  {spec.run_id()}  {spec.name}  [{spec.workload}, seed {spec.seed}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    specs = default_suite()
    if args.spec:
        wanted = set(args.spec)
        specs = [spec for spec in specs if spec.name in wanted]
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            print(
                f"repro-xp: unknown spec name(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    if not specs:
        print("repro-xp: nothing to run", file=sys.stderr)
        return 2
    try:
        runs = run_suite(specs, timing=args.timing)
    except SpecError as error:
        print(f"repro-xp: {error}", file=sys.stderr)
        return 2
    payload = build_matrix_report(runs)
    generated_at = (
        time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        if args.timestamp
        else None
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = write_bench_matrix_json(out, payload, generated_at=generated_at)
    validate_artifact(out, payload)
    written = [str(out)]
    if args.tables_dir:
        written.extend(write_tables(runs, args.tables_dir))
    total_runs = sum(1 + len(run.ablations) for run in runs)
    print(
        f"repro-xp: {len(runs)} spec(s), {total_runs} run(s) "
        f"({'with' if args.timing else 'no'} wall-clock timings)"
    )
    for entry in payload["importance_ranking"]:
        print(
            f"  importance {entry['importance']:+.3f}  "
            f"{entry['component']}  [{entry['workload']}: {entry['metric']}]"
        )
    for path in written:
        print(f"  wrote {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-xp",
        description="Run the declarative baseline-vs-ablated experiment matrix.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_parser = sub.add_parser("run", help="execute specs and write BENCH_matrix.json")
    run_parser.add_argument(
        "--out", default=str(DEFAULT_OUT), help="matrix artifact path"
    )
    run_parser.add_argument(
        "--spec",
        action="append",
        metavar="NAME",
        help="run only the named default-suite spec (repeatable)",
    )
    run_parser.add_argument(
        "--timing",
        action="store_true",
        help="also collect wall-clock timings (non-deterministic section)",
    )
    run_parser.add_argument(
        "--tables-dir",
        metavar="DIR",
        help="also write the historical ablation__*.txt tables here",
    )
    run_parser.add_argument(
        "--timestamp",
        action="store_true",
        help="stamp generated_at (omitted by default so the artifact "
        "is byte-reproducible)",
    )
    sub.add_parser("list", help="show workloads, toggles and the default suite")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
