"""Workload adapters: every migrated benchmark as an engine Workload.

Each adapter maps concrete toggle values onto the knobs the underlying
experiment already exposes (``InrConfig`` flags, scenario arguments,
``NameTree`` construction options) and folds the experiment's native
report into a :class:`~.runner.WorkloadResult`. The ``metrics`` it
returns are deterministic — simulated-clock latencies, counters,
ratios, analytic costs — so the matrix report is byte-reproducible;
wall-clock throughput numbers go in ``timings`` and only exist when the
run asked for them. ``details`` keeps the native report object so the
migrated bench drivers retain their own assertions and artifact
writers.

This module (with :mod:`.runner` and :mod:`.cli`) is lint-profiled to
permit the wall clock; :mod:`.spec`, :mod:`.report`, :mod:`.schema`
and :mod:`.gate` are not.
"""

from __future__ import annotations

import random
import time
from typing import List

from .runner import (
    WORKLOADS,
    SpecRun,
    Table,
    Workload,
    WorkloadResult,
    register_workload,
)
from .spec import ExperimentSpec


# ----------------------------------------------------------------------
# lookup — Figure 12 repeated queries + a top-level wild-card
# ----------------------------------------------------------------------
def _run_lookup(params, toggles, seed, timing) -> WorkloadResult:
    from ..experiments.workload import UniformWorkload
    from ..naming import NameSpecifier
    from ..nametree import AnnouncerID, Endpoint, NameRecord, NameTree

    names_in_tree = int(params.get("names", 6000))
    distinct_queries = int(params.get("distinct_queries", 64))
    lookups = int(params.get("lookups", 6000))
    refresh_every = int(params.get("refresh_every", 100))
    wildcard_attribute = str(params.get("wildcard_attribute", "a0"))
    wildcard_reps = int(params.get("wildcard_reps", 40))
    shape = dict(
        depth=int(params.get("depth", 3)),
        attribute_range=int(params.get("attribute_range", 3)),
        value_range=int(params.get("value_range", 3)),
        attributes_per_level=int(params.get("attributes_per_level", 2)),
    )

    names = UniformWorkload(rng=random.Random(seed), **shape).distinct_names(
        names_in_tree
    )
    query_source = UniformWorkload(rng=random.Random(seed + 1), **shape)
    queries = [query_source.random_name() for _ in range(distinct_queries)]

    def record(index: int) -> "NameRecord":
        return NameRecord(
            announcer=AnnouncerID.generate(f"memo-{index}", startup_time=1.0),
            endpoints=[Endpoint(host=f"memo-{index}", port=1)],
        )

    tree = NameTree(
        memoize=toggles["lookup_memo"],
        index_subtrees=toggles["subtree_index"],
    )
    for index, name in enumerate(names):
        tree.insert(name, record(index))

    # The memo's home workload: a small distinct-query set issued over
    # and over, with pure periodic refreshes mixed in (refreshes keep
    # the memo warm instead of flushing it). The refresh schedule is
    # identical in every arm so the ablation compares like with like.
    refreshes = 0
    repeated_records = 0
    started = time.perf_counter()
    for index in range(lookups):
        repeated_records += len(tree.lookup(queries[index % distinct_queries]))
        if refresh_every and index % refresh_every == 0:
            refreshes += 1
            tree.insert(names[index % len(names)], record(index % len(names)))
    elapsed = time.perf_counter() - started

    metrics = {
        "memo_hits": float(tree.memo_hits),
        "memo_misses": float(tree.memo_misses),
        "memo_invalidations": float(tree.memo_invalidations),
        "memo_served_fraction": (tree.memo_hits / lookups) if lookups else 0.0,
        "refreshes": float(refreshes),
        "repeated_result_records": float(repeated_records),
        # Analytic wild-card cost: nodes LOOKUP-NAME walks to build the
        # union without the index (0 with it) — deterministic, and it
        # keeps the lookup hot path free of instrumentation.
        "wildcard_scan_nodes": float(
            tree.wildcard_scan_cost(wildcard_attribute)
        ),
    }
    wildcard = NameSpecifier.parse(f"[{wildcard_attribute}=*]")
    metrics["wildcard_matches"] = float(len(tree.lookup(wildcard)))

    timings = {}
    if timing:
        if elapsed:
            timings["lookups_per_second"] = lookups / elapsed
        started = time.perf_counter()
        for _ in range(wildcard_reps):
            tree.lookup(wildcard)
        timings["wildcard_us"] = (
            (time.perf_counter() - started) / wildcard_reps * 1e6
        )
    return WorkloadResult(metrics=metrics, timings=timings)


def _lookup_tables(run: SpecRun) -> List[Table]:
    """The two historical wall-clock ablation tables; both need timing
    numbers, so a metrics-only run writes neither."""
    tables: List[Table] = []
    if not run.timing:
        return tables
    base = run.baseline.timings
    memo_arm = run.ablations.get("lookup_memo")
    if run.toggles.get("lookup_memo") and memo_arm is not None:
        cached = base.get("lookups_per_second")
        uncached = memo_arm.timings.get("lookups_per_second")
        if cached and uncached:
            tables.append((
                "Ablation: lookup memo (cached vs uncached, repeated queries)",
                ["mode", "lookups/s", "speedup"],
                [
                    ("uncached", f"{uncached:.0f}", "1.0x"),
                    ("memoized", f"{cached:.0f}", f"{cached / uncached:.1f}x"),
                ],
            ))
    index_arm = run.ablations.get("subtree_index")
    if run.toggles.get("subtree_index") and index_arm is not None:
        plain_us = index_arm.timings.get("wildcard_us")
        indexed_us = base.get("wildcard_us")
        if plain_us and indexed_us:
            names = run.spec.params.get("names", 6000)
            tables.append((
                "Ablation: subtree indexing, top-level wild-card "
                f"over {names} names",
                ["variant", "us per wild-card lookup"],
                [
                    ("traversal (paper's algorithm)", f"{plain_us:.0f}"),
                    ("incremental index", f"{indexed_us:.0f}"),
                    ("speedup", f"{plain_us / indexed_us:.2f}x"),
                ],
            ))
    return tables


register_workload(Workload(
    id="lookup",
    description=(
        "Figure 12 regime: repeated distinct queries with periodic "
        "refreshes, plus one top-level wild-card union"
    ),
    toggles=("lookup_memo", "subtree_index"),
    primary_metrics={
        "lookup_memo": ("memo_served_fraction", "higher"),
        "subtree_index": ("wildcard_scan_nodes", "lower"),
    },
    run=_run_lookup,
    suite_tables=_lookup_tables,
))


# ----------------------------------------------------------------------
# packet-cache — the Camera caching extension (Section 3.2)
# ----------------------------------------------------------------------
def _run_packet_cache(params, toggles, seed, timing) -> WorkloadResult:
    from ..experiments.ablations import run_cache_experiment

    result = run_cache_experiment(
        requests=int(params.get("requests", 10)),
        seed=seed,
        packet_cache=toggles["packet_cache"],
    )
    return WorkloadResult(
        metrics={
            "requests": float(result.requests),
            "origin_served": float(result.origin_served),
            "cache_answers": float(result.cache_answers),
            "cache_served_fraction": (
                result.cache_answers / result.requests
                if result.requests
                else 0.0
            ),
        },
        details={"result": result},
    )


def _packet_cache_tables(run: SpecRun) -> List[Table]:
    if not run.toggles.get("packet_cache"):
        return []
    result = run.baseline.details["result"]
    return [(
        "Ablation: INR packet cache on repeated Camera requests",
        ["requests", "served by origin", "answered from cache"],
        [(result.requests, result.origin_served, result.cache_answers)],
    )]


register_workload(Workload(
    id="packet-cache",
    description=(
        "repeated cacheable Camera requests through two INRs; the "
        "origin should serve once and the caches absorb the rest"
    ),
    toggles=("packet_cache",),
    primary_metrics={"packet_cache": ("origin_served", "lower")},
    run=_run_packet_cache,
    suite_tables=_packet_cache_tables,
))


# ----------------------------------------------------------------------
# availability — steady lookups under the seeded chaos fault plan
# ----------------------------------------------------------------------
def _run_availability(params, toggles, seed, timing) -> WorkloadResult:
    from ..chaos import run_availability_scenario

    report = run_availability_scenario(
        seed=seed,
        resilience=toggles["resilience"],
        admission_control=toggles["admission_control"],
        observe=toggles["obs_tracing"],
        n_inrs=int(params.get("n_inrs", 4)),
        n_services=int(params.get("n_services", 3)),
        n_clients=int(params.get("n_clients", 3)),
        duration=float(params.get("duration", 30.0)),
        lookup_interval=float(params.get("lookup_interval", 0.5)),
    )
    metrics = {
        "success_rate": report.success_rate,
        "requests_attempted": float(report.requests_attempted),
        "requests_succeeded": float(report.requests_succeeded),
        "requests_empty": float(report.requests_empty),
        "requests_failed": float(report.requests_failed),
        "requests_hung": float(report.requests_hung),
        "latency_p50": report.latency_p50,
        "latency_p99": report.latency_p99,
        "retries": float(report.retries),
        "failovers": float(report.failovers),
        "deadline_exceeded": float(report.deadline_exceeded),
        "pushbacks_received": float(report.pushbacks_received),
        "shed_periodic": float(report.shed_periodic),
        "shed_triggered": float(report.shed_triggered),
        "pushbacks_sent": float(report.pushbacks_sent),
    }
    return WorkloadResult(
        metrics=metrics,
        details={"report": report},
        collector=getattr(report, "collector", None),
    )


register_workload(Workload(
    id="availability",
    description=(
        "steady early-binding lookups through one seeded fault plan "
        "(crashes, lossy links, partition, CPU overload)"
    ),
    toggles=("resilience", "admission_control", "obs_tracing"),
    primary_metrics={
        "resilience": ("success_rate", "higher"),
        "admission_control": ("success_rate", "higher"),
        "obs_tracing": ("success_rate", "higher"),
    },
    run=_run_availability,
))


# ----------------------------------------------------------------------
# dtn — disruption tolerance: custody transfer on vs off
# ----------------------------------------------------------------------
def _run_dtn(params, toggles, seed, timing) -> WorkloadResult:
    from ..chaos import run_dtn_scenario

    report = run_dtn_scenario(
        seed=seed,
        custody=toggles["custody"],
        disruption=float(params.get("disruption", 30.0)),
        duty_window=float(params.get("duty_window", 12.0)),
        observe=toggles["obs_tracing"],
    )
    metrics = {
        "delivery_ratio": report.delivery_ratio,
        "messages_sent": float(report.messages_sent),
        "messages_delivered": float(report.messages_delivered),
        "latency_p50": report.latency_p50,
        "latency_p99": report.latency_p99,
        "latency_max": report.latency_max,
        "custody_accepted": float(report.custody_accepted),
        "custody_released": float(report.custody_released),
        "custody_transfers_sent": float(report.custody_transfers_sent),
        "custody_transfers_received": float(report.custody_transfers_received),
        "drops_custody_expired": float(report.drops_custody_expired),
        "drops_custody_evicted": float(report.drops_custody_evicted),
        "drops_no_route": float(report.drops_no_route),
        "drops_expired_record": float(report.drops_expired_record),
        "converged_violations": float(len(report.converged_violations)),
    }
    return WorkloadResult(
        metrics=metrics,
        details={"report": report},
        collector=getattr(report, "collector", None),
    )


register_workload(Workload(
    id="dtn",
    description=(
        "late-binding anycast through duty-cycled links and a long "
        "partition; custody store-and-forward vs drop-at-no-route"
    ),
    toggles=("custody", "obs_tracing"),
    primary_metrics={
        "custody": ("delivery_ratio", "higher"),
        "obs_tracing": ("delivery_ratio", "higher"),
    },
    run=_run_dtn,
))


# ----------------------------------------------------------------------
# delegation — crash-safe two-phase vspace handoff, no operator
# ----------------------------------------------------------------------
def _run_delegation(params, toggles, seed, timing) -> WorkloadResult:
    from ..chaos import run_delegation_scenario

    two_phase = toggles["delegation_two_phase"]
    # The controlled comparison BENCH_delegation.json leads with: a
    # recipient crash with no operator restart. Two-phase is killed
    # mid-TRANSFER (the worst moment that protocol can be hit);
    # single-shot is killed right after its one unacknowledged batch —
    # the moment that *exists* for it and orphans the vspace.
    report = run_delegation_scenario(
        seed=seed,
        two_phase=two_phase,
        crash_role="recipient",
        crash_phase="transfer" if two_phase else "post-transfer",
        restart_after=None,
        n_bulk=int(params.get("n_bulk", 24)),
        n_anchor=int(params.get("n_anchor", 6)),
        traffic=float(params.get("traffic", 14.0)),
    )
    metrics = {
        "window_success_rate": report.window_success_rate,
        "success_rate": report.success_rate,
        "lost_records": float(report.lost_records),
        "delegations_started": float(report.delegations_started),
        "delegations_committed": float(report.delegations_committed),
        "delegations_aborted": float(report.delegations_aborted),
        "delegation_rollbacks": float(report.delegation_rollbacks),
        "requests_attempted": float(report.requests_attempted),
        "requests_succeeded": float(report.requests_succeeded),
        "window_requests": float(report.window_requests),
        "window_succeeded": float(report.window_succeeded),
        "authority_count": float(len(report.authority)),
        "converged_violations": float(len(report.converged_violations)),
    }
    return WorkloadResult(metrics=metrics, details={"report": report})


register_workload(Workload(
    id="delegation",
    description=(
        "vspace handoff under update overload with a recipient crash "
        "and no operator restart; two-phase vs single-shot transfer"
    ),
    toggles=("delegation_two_phase",),
    primary_metrics={
        "delegation_two_phase": ("window_success_rate", "higher"),
    },
    run=_run_delegation,
))


# ----------------------------------------------------------------------
# discovery — Figure 14: discovery time vs overlay hops
# ----------------------------------------------------------------------
def _run_discovery(params, toggles, seed, timing) -> WorkloadResult:
    from ..experiments.fig14 import run_discovery_experiment, slope_ms_per_hop

    observe = toggles["obs_tracing"]
    out = run_discovery_experiment(
        max_hops=int(params.get("max_hops", 6)),
        seed=seed,
        chain_latency=float(params.get("chain_latency", 0.002)),
        observe=observe,
    )
    collector = None
    rows = out
    if observe:
        rows, collector = out
    # Discovery traffic carries no trace contexts, so ablating tracing
    # must not move a single timestamp: importance 0 here is the
    # reproduced zero-overhead claim, not a missing measurement.
    metrics = {
        "slope_ms_per_hop": slope_ms_per_hop(rows),
        "discovery_ms_first_hop": rows[0].discovery_ms,
        "discovery_ms_max_hops": rows[-1].discovery_ms,
        "hops": float(rows[-1].hops),
    }
    return WorkloadResult(
        metrics=metrics, details={"rows": rows}, collector=collector
    )


register_workload(Workload(
    id="discovery",
    description=(
        "Figure 14: time for a new name to reach the h-th resolver of "
        "an INR chain, linear in hops"
    ),
    toggles=("obs_tracing",),
    primary_metrics={"obs_tracing": ("slope_ms_per_hop", "lower")},
    run=_run_discovery,
))


# ----------------------------------------------------------------------
# routing — Figure 15: per-INR burst routing cost
# ----------------------------------------------------------------------
def _run_routing(params, toggles, seed, timing) -> WorkloadResult:
    from ..experiments.fig15 import run_routing_experiment
    from ..resolver import CostModel

    name_counts = tuple(int(n) for n in params.get("name_counts", (250, 5000)))
    rows = run_routing_experiment(
        name_counts=name_counts,
        seed=seed,
        costs=CostModel(model_delivery_artifact=toggles["delivery_artifact"]),
    )
    metrics = {}
    for row in rows:
        metrics[f"local_ms_{row.names_in_vspace}"] = row.local_ms
        metrics[f"remote_same_vspace_ms_{row.names_in_vspace}"] = (
            row.remote_same_vspace_ms
        )
        metrics[f"remote_other_vspace_ms_{row.names_in_vspace}"] = (
            row.remote_other_vspace_ms
        )
    # The delivery artifact is a deliberately reproduced *cost* from
    # the paper, so its importance is negative by construction: the
    # local curve flattens when it is disabled.
    metrics["local_ms_max_names"] = rows[-1].local_ms
    return WorkloadResult(metrics=metrics, details={"rows": rows})


def _routing_tables(run: SpecRun) -> List[Table]:
    arm = run.ablations.get("delivery_artifact")
    if not run.toggles.get("delivery_artifact") or arm is None:
        return []
    rows = arm.details["rows"]
    return [(
        "Figure 15 ablation: local case with the delivery artifact disabled",
        ["names in vspace", "local (ms/burst)"],
        [(row.names_in_vspace, f"{row.local_ms:.0f}") for row in rows],
    )]


register_workload(Workload(
    id="routing",
    description=(
        "Figure 15: simulated ms to route a 100-packet burst (local / "
        "remote same-vspace / remote other-vspace) as the vspace grows"
    ),
    toggles=("delivery_artifact",),
    primary_metrics={"delivery_artifact": ("local_ms_max_names", "lower")},
    run=_run_routing,
    suite_tables=_routing_tables,
))


# ----------------------------------------------------------------------
# spawn-overload — Section 2.5 spawn on lookup overload
# ----------------------------------------------------------------------
def _run_spawn_overload(params, toggles, seed, timing) -> WorkloadResult:
    from ..experiments.ablations import run_spawn_experiment

    result = run_spawn_experiment(
        request_rate=float(params.get("request_rate", 900.0)),
        duration=float(params.get("duration", 40.0)),
        seed=seed,
        enable_load_balancing=toggles["load_balancing"],
    )
    return WorkloadResult(
        metrics={
            "inrs_before": float(result.inrs_before),
            "inrs_during_load": float(result.inrs_during_load),
            "inrs_after": float(result.inrs_after),
            "spawned": float(len(result.spawned_addresses)),
            "main_peak_utilization": result.main_peak_utilization,
            "main_min_utilization_late": result.main_min_utilization_late,
        },
        details={"result": result},
    )


def _spawn_tables(run: SpecRun) -> List[Table]:
    if not run.toggles.get("load_balancing"):
        return []
    result = run.baseline.details["result"]
    return [(
        "Ablation: spawn on lookup overload",
        ["INRs before", "INRs during load", "INRs after idle",
         "spawned nodes", "main peak util", "main min util (late)"],
        [(
            result.inrs_before,
            result.inrs_during_load,
            result.inrs_after,
            ",".join(result.spawned_addresses) or "-",
            f"{result.main_peak_utilization:.2f}",
            f"{result.main_min_utilization_late:.2f}",
        )],
    )]


register_workload(Workload(
    id="spawn-overload",
    description=(
        "lookup-overloaded INR claims candidates and spawns helpers "
        "while the load flows; helpers retire on idleness"
    ),
    toggles=("load_balancing",),
    primary_metrics={
        "load_balancing": ("main_min_utilization_late", "lower"),
    },
    run=_run_spawn_overload,
    suite_tables=_spawn_tables,
))


# ----------------------------------------------------------------------
# update-overload — Section 2.5 vspace delegation on update overload
# ----------------------------------------------------------------------
def _run_update_overload(params, toggles, seed, timing) -> WorkloadResult:
    from ..experiments.ablations import run_delegation_experiment

    result = run_delegation_experiment(
        seed=seed, enable_load_balancing=toggles["load_balancing"]
    )
    return WorkloadResult(
        metrics={
            "vspaces_before": float(len(result.vspaces_before)),
            "vspaces_after": float(len(result.vspaces_after)),
            "vspaces_delegated": float(
                len(result.vspaces_before) - len(result.vspaces_after)
            ),
            "still_resolvable": float(result.still_resolvable),
        },
        details={"result": result},
    )


def _update_overload_tables(run: SpecRun) -> List[Table]:
    if not run.toggles.get("load_balancing"):
        return []
    result = run.baseline.details["result"]
    return [(
        "Ablation: vspace delegation on update overload",
        ["vspaces before", "vspaces after", "delegate resolver",
         "delegated space still resolvable"],
        [(
            ",".join(result.vspaces_before),
            ",".join(result.vspaces_after),
            ",".join(result.delegate_resolvers) or "-",
            result.still_resolvable,
        )],
    )]


register_workload(Workload(
    id="update-overload",
    description=(
        "update-overloaded INR delegates one of its vspaces; the "
        "delegated names stay resolvable through vspace forwarding"
    ),
    toggles=("load_balancing",),
    primary_metrics={"load_balancing": ("vspaces_delegated", "higher")},
    run=_run_update_overload,
    suite_tables=_update_overload_tables,
))


# ----------------------------------------------------------------------
# The committed default suite
# ----------------------------------------------------------------------
def default_suite() -> List[ExperimentSpec]:
    """The suite behind the committed ``BENCH_matrix.json``: every
    toggle exercised at least once, scaled to finish in well under a
    minute, deterministic with ``timing=False``."""
    return [
        ExperimentSpec(
            name="lookup-memo-index",
            workload="lookup",
            seed=0,
            params={"names": 6000, "lookups": 6000},
        ),
        ExperimentSpec(
            name="packet-cache-camera",
            workload="packet-cache",
            seed=0,
            params={"requests": 10},
        ),
        ExperimentSpec(name="availability-chaos", workload="availability", seed=7),
        # Overload regime: admission control actually engages here, and
        # the matrix records its honest cost — shed requests lower the
        # success rate while the queue bound protects the resolver.
        ExperimentSpec(
            name="availability-overload",
            workload="availability",
            seed=7,
            params={"lookup_interval": 0.1},
            ablations=("admission_control",),
        ),
        ExperimentSpec(
            name="dtn-disruption",
            workload="dtn",
            seed=7,
            params={"disruption": 30.0},
        ),
        ExperimentSpec(name="delegation-crash", workload="delegation", seed=7),
        ExperimentSpec(
            name="discovery-chain",
            workload="discovery",
            seed=0,
            params={"max_hops": 6},
        ),
        ExperimentSpec(
            name="routing-burst",
            workload="routing",
            seed=0,
            params={"name_counts": (250, 5000)},
        ),
        ExperimentSpec(
            name="spawn-overload",
            workload="spawn-overload",
            seed=0,
            params={"request_rate": 900.0, "duration": 40.0},
        ),
        ExperimentSpec(name="update-overload", workload="update-overload", seed=0),
    ]
