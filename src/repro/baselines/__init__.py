"""Baseline systems INS is contrasted against (DNS-style directories)."""

from .dns import (
    DNS_PORT,
    DnsAnswer,
    DnsClient,
    DnsDeregister,
    DnsDirectory,
    DnsQuery,
    DnsRegister,
    DnsRegisteredService,
)

__all__ = [
    "DNS_PORT",
    "DnsAnswer",
    "DnsClient",
    "DnsDeregister",
    "DnsDirectory",
    "DnsQuery",
    "DnsRegister",
    "DnsRegisteredService",
]
