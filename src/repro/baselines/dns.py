"""A DNS-flavoured baseline directory service.

The paper repeatedly contrasts INS with the Internet DNS: hostname ->
address mappings, manual (explicit) registration and de-registration,
client-side caching with TTLs, and round-robin selection among multiple
records ("this metric-based resolution is richer than round-robin DNS
resolution", Section 2). This module implements that baseline faithfully
enough to measure the contrast:

- a central :class:`DnsDirectory` mapping flat hostnames to address
  records; entries are hard state — they change only on explicit
  (re-/de-)registration, never by timeout;
- :class:`DnsClient` resolves names, caches answers for the record TTL
  and rotates round-robin through multi-record answers;
- :class:`DnsRegisteredService` registers itself once at startup, like
  a statically configured server.

The benchmark in ``bench_baseline_dns.py`` runs the same mobility
scenario against INS and against this baseline: INS's soft state and
late binding recover automatically, the DNS baseline keeps handing out
the stale cached address until the TTL expires *and* someone re-registers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..nametree import Endpoint
from ..netsim import Node, Process

#: Well-known port of the directory server.
DNS_PORT = 5353

_REQUEST_IDS = itertools.count(1)


@dataclass
class DnsRegister:
    hostname: str
    endpoint: Endpoint
    ttl: float
    #: stable identity of the registrant, so a re-registration from a
    #: new address REPLACES the stale record instead of adding to it
    owner: str = ""

    def wire_size(self) -> int:
        return 28 + len(self.hostname) + len(self.owner) + 16


@dataclass
class DnsDeregister:
    hostname: str
    endpoint: Endpoint

    def wire_size(self) -> int:
        return 28 + len(self.hostname) + 16


@dataclass
class DnsQuery:
    hostname: str
    reply_to: str
    reply_port: int
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    def wire_size(self) -> int:
        return 28 + len(self.hostname)


@dataclass
class DnsAnswer:
    request_id: int
    hostname: str
    records: Tuple[Endpoint, ...]
    ttl: float

    def wire_size(self) -> int:
        return 28 + len(self.hostname) + 16 * len(self.records)


class DnsDirectory(Process):
    """The authoritative server: flat names, hard state."""

    def __init__(self, node: Node, default_ttl: float = 60.0) -> None:
        super().__init__(node, DNS_PORT)
        self.default_ttl = default_ttl
        self._records: Dict[str, List[Tuple[Endpoint, float, str]]] = {}
        self.queries_served = 0

    def records_for(self, hostname: str) -> Tuple[Endpoint, ...]:
        return tuple(
            endpoint for endpoint, _, _ in self._records.get(hostname, [])
        )

    def handle_message(self, payload, source: str) -> None:
        if isinstance(payload, DnsRegister):
            records = self._records.setdefault(payload.hostname, [])
            owner = payload.owner or str(payload.endpoint)
            records[:] = [
                (e, t, o) for e, t, o in records
                if o != owner and e != payload.endpoint
            ]
            records.append((payload.endpoint, payload.ttl, owner))
        elif isinstance(payload, DnsDeregister):
            records = self._records.get(payload.hostname)
            if records is not None:
                records[:] = [
                    (e, t, o) for e, t, o in records if e != payload.endpoint
                ]
                if not records:
                    del self._records[payload.hostname]
        elif isinstance(payload, DnsQuery):
            self.queries_served += 1
            entries = self._records.get(payload.hostname, [])
            ttl = min((t for _, t, _ in entries), default=self.default_ttl)
            self.send(
                payload.reply_to,
                payload.reply_port,
                DnsAnswer(
                    request_id=payload.request_id,
                    hostname=payload.hostname,
                    records=tuple(e for e, _, _ in entries),
                    ttl=ttl,
                ),
            )


@dataclass
class _CacheEntry:
    records: Tuple[Endpoint, ...]
    expires_at: float
    next_index: int = 0


class DnsClient(Process):
    """A stub resolver with TTL caching and round-robin selection."""

    def __init__(self, node: Node, port: int, directory: str) -> None:
        super().__init__(node, port)
        self.directory = directory
        self._cache: Dict[str, _CacheEntry] = {}
        self._pending: Dict[int, Tuple[str, object]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def resolve(self, hostname: str):
        """Resolve ``hostname``; returns a Reply of Optional[Endpoint].

        Cached answers are served until their TTL expires — including
        stale ones, exactly the failure mode late binding avoids.
        """
        from ..client.futures import Reply

        reply = Reply()
        entry = self._cache.get(hostname)
        if entry is not None and entry.expires_at > self.now:
            self.cache_hits += 1
            reply.resolve(self._pick(entry))
            return reply
        self.cache_misses += 1
        query = DnsQuery(hostname=hostname, reply_to=self.address,
                         reply_port=self.port)
        self._pending[query.request_id] = (hostname, reply)
        self.send(self.directory, DNS_PORT, query)
        return reply

    def _pick(self, entry: _CacheEntry) -> Optional[Endpoint]:
        if not entry.records:
            return None
        endpoint = entry.records[entry.next_index % len(entry.records)]
        entry.next_index += 1
        return endpoint

    def handle_message(self, payload, source: str) -> None:
        if isinstance(payload, DnsAnswer):
            pending = self._pending.pop(payload.request_id, None)
            if pending is None:
                return
            hostname, reply = pending
            entry = _CacheEntry(
                records=payload.records, expires_at=self.now + payload.ttl
            )
            self._cache[hostname] = entry
            reply.resolve(self._pick(entry))


class DnsRegisteredService(Process):
    """A server registered in the directory, DNS-style: once, manually.

    Node mobility silently breaks it — nothing re-registers the new
    address unless the operator (the experiment) does so explicitly.
    That is the point of the baseline.
    """

    def __init__(self, node: Node, port: int, hostname: str, directory: str,
                 ttl: float = 60.0) -> None:
        super().__init__(node, port)
        self.hostname = hostname
        self.directory = directory
        self.ttl = ttl
        self.received: List[bytes] = []
        # Stable across address changes: it is how a re-registration
        # replaces this server's previous record.
        self._owner = f"{hostname}#{next(_REQUEST_IDS)}"

    def start(self) -> None:
        self.register()

    def register(self) -> None:
        self.send(
            self.directory,
            DNS_PORT,
            DnsRegister(
                hostname=self.hostname,
                endpoint=Endpoint(host=self.address, port=self.port),
                ttl=self.ttl,
                owner=self._owner,
            ),
        )

    def handle_message(self, payload, source: str) -> None:
        if isinstance(payload, bytes):
            self.received.append(payload)
