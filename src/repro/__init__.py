"""Reproduction of the Intentional Naming System (INS), SOSP '99.

"The design and implementation of an intentional naming system",
W. Adjie-Winoto, E. Schwartz, H. Balakrishnan and J. Lilley, MIT LCS.

Layering (bottom up):

- :mod:`repro.netsim`   — discrete-event network substrate.
- :mod:`repro.naming`   — the intentional name language (Section 2.1).
- :mod:`repro.nametree` — name-trees, LOOKUP-NAME, GET-NAME (Section 2.3).
- :mod:`repro.message`  — the INS packet format (Figure 10).
- :mod:`repro.resolver` — INRs: discovery, late binding, load balancing.
- :mod:`repro.overlay`  — DSR and overlay self-configuration (Section 2.4).
- :mod:`repro.client`   — the application API (Section 3).
- :mod:`repro.apps`     — Floorplan, Camera and Printer (Section 3).
- :mod:`repro.experiments` — workloads and per-figure harnesses (Section 5).
- :mod:`repro.analysis` — the lookup cost model (Section 5.1.1).

The most common entry points are re-exported here.
"""

from .client import InsClient, MobilityManager, Reply, Service
from .message import Binding, Delivery, InsMessage
from .naming import AVPair, NameSpecifier
from .nametree import AnnouncerID, Endpoint, NameRecord, NameTree, Route
from .netsim import Network, Simulator
from .overlay import DomainSpaceResolver
from .resolver import INR, CostModel, InrConfig

__version__ = "1.0.0"

__all__ = [
    "AVPair",
    "AnnouncerID",
    "Binding",
    "CostModel",
    "Delivery",
    "DomainSpaceResolver",
    "Endpoint",
    "INR",
    "InrConfig",
    "InsClient",
    "InsMessage",
    "MobilityManager",
    "NameRecord",
    "NameSpecifier",
    "NameTree",
    "Network",
    "Reply",
    "Route",
    "Service",
    "Simulator",
    "__version__",
]
