"""Disruption-tolerant resolution: custody-transfer store-and-forward.

The paper's late-binding anycast assumes the overlay usually has a
route to a matching service; under long partitions and duty-cycled
links the resolver would otherwise drop or time out. This layer gives
an INR *custody* semantics: payloads that cannot be moved are held in a
bounded, deterministically-evicted :class:`CustodyStore` and re-bound
to a route when name state returns — the intentional name, not any
address, waits out the partition.

The package sits low in the layer DAG (above ``naming``/``message``/
``obs`` only) so the resolver can embed a store; the wire form of a
custody handoff lives in :mod:`repro.message.custody`, and the chaos
scenario that measures delivery ratio versus disruption length lives
in :mod:`repro.chaos.dtn`. All timing is virtual — the wall clock is
banned here by the dtn lint profile.
"""

from .custody import (
    PRIORITY_KNOWN_NAME,
    PRIORITY_UNKNOWN_NAME,
    CustodyCounts,
    CustodyEntry,
    CustodyStore,
)

__all__ = [
    "CustodyCounts",
    "CustodyEntry",
    "CustodyStore",
    "PRIORITY_KNOWN_NAME",
    "PRIORITY_UNKNOWN_NAME",
]
