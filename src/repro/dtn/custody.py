"""The bounded custody store behind disruption-tolerant forwarding.

When an INR's forwarding agent finds a late-binding anycast payload it
cannot move — no record matches the destination name, every match has
outlived its soft-state lifetime, or the next hop has gone silent — a
disruption-tolerant resolver takes *custody* of the payload instead of
dropping it: the encoded packet is parked here, bounded in count and in
time, and re-attempted when name state changes or links heal. The name
is what waits out the partition, exactly the property that makes
intentional naming a natural fit for delay-tolerant networks.

Everything about the store is deterministic: admission order assigns a
monotonic sequence number, eviction is FIFO within priority tiers, and
expiry compares virtual-time deadlines — two same-seed runs make
identical custody decisions. Priorities mirror the resolver's
admission-control tiers, cheapest loss last to be kept:

- :data:`PRIORITY_KNOWN_NAME` (0): the destination name *was* known
  here (an expired record, or a suspect next hop on a live route). The
  service evidently exists and is likely to re-advertise — the
  analogue of triggered state, shed last.
- :data:`PRIORITY_UNKNOWN_NAME` (1): no record for the name was ever
  seen. It may be a name that never existed — the analogue of a
  periodic refresh, shed first.

The store also supports the DSR's snapshot/adopt state-transfer
pattern: :meth:`CustodyStore.snapshot` emits a copyable view (custody
is stable storage — it survives a crash of the process holding it) and
:meth:`CustodyStore.adopt` re-admits a snapshot, re-running capacity
eviction, so custody migrates across restarts and CUSTODY-TRANSFER
handoffs alike.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..naming import NameSpecifier

#: Custody priority for payloads whose destination name was known when
#: custody was taken (expired record / suspect next hop): evicted last.
PRIORITY_KNOWN_NAME = 0

#: Custody priority for payloads whose destination name was never seen
#: at this resolver: evicted first.
PRIORITY_UNKNOWN_NAME = 1


@dataclass
class CustodyEntry:
    """One payload held in custody.

    ``raw`` is the full encoded INS packet (header, names, data, any
    trace context) — authoritative for re-injection and for the wire
    form of a CUSTODY-TRANSFER. ``destination`` is parsed once at
    accept time so retry matching never re-decodes the packet.
    """

    raw: bytes
    destination: NameSpecifier
    vspace: str
    accepted_at: float
    #: absolute virtual time at which custody lapses (TTL expiry)
    deadline: float
    priority: int
    #: admission order within this store; FIFO eviction key
    sequence: int
    #: why custody was taken (no-route / expired-record / next-hop-suspect)
    cause: str = "no-route"
    #: how many custody handoffs this payload has survived
    transfers: int = 0
    #: trace context carried by the packet, for drop/release spans
    trace: object = field(default=None, repr=False)


@dataclass
class CustodyCounts:
    """Cumulative custody outcomes, one counter per fate."""

    accepted: int = 0
    #: released back into the forwarding path (a route reappeared)
    released: int = 0
    #: custody lapsed: the TTL deadline passed unresolved
    expired: int = 0
    #: pushed out by capacity pressure (or refused at the door)
    evicted: int = 0
    #: entries adopted from a CUSTODY-TRANSFER or a snapshot
    adopted: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Every counter in declaration order — the uniform shape the
        metrics registry ingests."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CustodyStore:
    """A bounded, deterministically-evicted parking lot for payloads.

    ``capacity`` bounds the entry count. Admission past capacity evicts
    from the numerically-highest (least valuable) priority tier first,
    oldest sequence first within the tier — FIFO within priority. An
    arriving payload strictly less valuable than everything stored is
    refused at the door and counted as evicted itself.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"custody capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: sequence -> entry, in admission order (dict preserves it)
        self._entries: Dict[int, CustodyEntry] = {}
        self._sequences = itertools.count(1)
        self.counts = CustodyCounts()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Admission and eviction
    # ------------------------------------------------------------------
    def accept(
        self,
        raw: bytes,
        destination: NameSpecifier,
        vspace: str,
        now: float,
        ttl: float,
        priority: int,
        cause: str = "no-route",
        transfers: int = 0,
        deadline: Optional[float] = None,
        trace: object = None,
    ) -> Tuple[Optional[CustodyEntry], List[CustodyEntry]]:
        """Take custody of one payload.

        Returns ``(entry, evicted)``: the admitted entry (None when the
        payload was refused because the store is full of higher-priority
        state) and the entries evicted to make room. ``deadline``
        overrides ``now + ttl`` when custody is adopted mid-life from a
        transfer — a handoff must not reset the payload's clock.
        """
        evicted: List[CustodyEntry] = []
        if len(self._entries) >= self.capacity:
            victim = self._eviction_victim(priority)
            if victim is None:
                # Everything stored outranks (or ties below) the
                # arrival; the newcomer itself is the cheapest loss.
                self.counts.evicted += 1
                return None, evicted
            del self._entries[victim.sequence]
            self.counts.evicted += 1
            evicted.append(victim)
        entry = CustodyEntry(
            raw=raw,
            destination=destination,
            vspace=vspace,
            accepted_at=now,
            deadline=deadline if deadline is not None else now + ttl,
            priority=priority,
            sequence=next(self._sequences),
            cause=cause,
            transfers=transfers,
            trace=trace,
        )
        self._entries[entry.sequence] = entry
        self.counts.accepted += 1
        return entry, evicted

    def _eviction_victim(self, arriving_priority: int) -> Optional[CustodyEntry]:
        """The stored entry to evict for an arrival of the given
        priority, or None when the arrival itself should be refused.

        The victim tier is the numerically-largest stored priority; the
        arrival is refused only when it is strictly worse than that.
        Within the tier the oldest sequence goes first (FIFO).
        """
        victim = max(
            self._entries.values(),
            key=lambda e: (e.priority, -e.sequence),
        )
        if arriving_priority > victim.priority:
            return None
        return victim

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def expire(self, now: float) -> List[CustodyEntry]:
        """Remove and return every entry whose custody deadline passed."""
        lapsed = [e for e in self._entries.values() if now >= e.deadline]
        for entry in lapsed:
            del self._entries[entry.sequence]
            self.counts.expired += 1
        return lapsed

    def release(self, entry: CustodyEntry) -> bool:
        """Remove ``entry`` for re-injection into the forwarding path."""
        if self._entries.pop(entry.sequence, None) is None:
            return False
        self.counts.released += 1
        return True

    def entries(self, vspace: Optional[str] = None) -> List[CustodyEntry]:
        """Current entries in admission order, optionally one vspace's."""
        if vspace is None:
            return list(self._entries.values())
        return [e for e in self._entries.values() if e.vspace == vspace]

    def drain(self) -> List[CustodyEntry]:
        """Remove and return everything — the terminating-INR handoff."""
        drained = list(self._entries.values())
        self._entries = {}
        return drained

    # ------------------------------------------------------------------
    # State transfer (the DSR snapshot/adopt pattern)
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """A copyable view of the held payloads, for stable storage
        across a crash or a custody handoff."""
        return tuple(
            (e.raw, e.vspace, e.deadline, e.priority, e.cause, e.transfers)
            for e in self._entries.values()
        )

    def adopt(self, snapshot: tuple, now: float) -> Tuple[List[CustodyEntry], List[CustodyEntry]]:
        """Re-admit a snapshot's payloads, preserving each deadline.

        Runs normal admission, so capacity pressure evicts exactly as a
        live accept would. Already-lapsed payloads are not admitted but
        returned so the caller can attribute their loss. Returns
        ``(lapsed, evicted)``.
        """
        from ..message import InsMessage

        lapsed: List[CustodyEntry] = []
        evicted: List[CustodyEntry] = []
        for raw, vspace, deadline, priority, cause, transfers in snapshot:
            message = InsMessage.decode(raw)
            if now >= deadline:
                ghost = CustodyEntry(
                    raw=raw,
                    destination=message.destination,
                    vspace=vspace,
                    accepted_at=now,
                    deadline=deadline,
                    priority=priority,
                    sequence=0,
                    cause=cause,
                    transfers=transfers,
                    trace=message.trace,
                )
                self.counts.expired += 1
                lapsed.append(ghost)
                continue
            entry, pushed_out = self.accept(
                raw,
                message.destination,
                vspace,
                now,
                ttl=0.0,
                priority=priority,
                cause=cause,
                transfers=transfers,
                deadline=deadline,
                trace=message.trace,
            )
            if entry is not None:
                self.counts.adopted += 1
            else:
                # Refused at the door: surface the loss to the caller
                # like any other eviction so it stays attributable.
                evicted.append(
                    CustodyEntry(
                        raw=raw,
                        destination=message.destination,
                        vspace=vspace,
                        accepted_at=now,
                        deadline=deadline,
                        priority=priority,
                        sequence=0,
                        cause=cause,
                        transfers=transfers,
                        trace=message.trace,
                    )
                )
            evicted.extend(pushed_out)
        return lapsed, evicted

    def __repr__(self) -> str:
        return (
            f"CustodyStore(held={len(self._entries)}/{self.capacity}, "
            f"accepted={self.counts.accepted}, released={self.counts.released})"
        )
