"""Observability: hop-by-hop tracing, metrics, exporters.

The layer that turns black-box aggregates into explainable numbers:

- :mod:`.context` — the (trace_id, span_id, parent_span_id) triple
  carried in the wire header across INR hops;
- :mod:`.span` — spans, the deterministic :class:`Tracer`, span-tree
  well-formedness checks;
- :mod:`.metrics` — the unified Counter/Gauge/Histogram registry with
  labels and deterministic snapshots;
- :mod:`.export` — JSONL, human timeline, Chrome trace-event format;
- :mod:`.collector` — the per-run bundle experiments attach.

``obs`` sits at the bottom of the layer DAG (beside ``message``): it
imports nothing from the rest of the system, so every layer above may
use it. All timing flows from the simulator's virtual clock — wall
clocks are banned here by the obs lint profile.
"""

from .context import NO_PARENT, TRACE_CONTEXT_SIZE, TraceContext
from .collector import ObsCollector
from .export import (
    render_timeline,
    spans_to_jsonl,
    summarize_spans,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
    write_spans_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counts,
)
from .span import (
    DROP_PREFIX,
    STATUS_OK,
    STATUS_OPEN,
    Span,
    Tracer,
    trace_tree_errors,
    well_formed_traces,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DROP_PREFIX",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NO_PARENT",
    "ObsCollector",
    "STATUS_OK",
    "STATUS_OPEN",
    "Span",
    "TRACE_CONTEXT_SIZE",
    "TraceContext",
    "Tracer",
    "merge_counts",
    "render_timeline",
    "spans_to_jsonl",
    "summarize_spans",
    "to_chrome_trace",
    "trace_tree_errors",
    "well_formed_traces",
    "write_chrome_trace",
    "write_metrics_json",
    "write_spans_jsonl",
]
