"""The per-run observability collector: one tracer + one registry.

An :class:`ObsCollector` is what an experiment or chaos run attaches to
a domain (``InsDomain.observe()`` wires it to every current and future
INR and client). It owns the :class:`~.span.Tracer` instrumented code
records spans into, the :class:`~.metrics.MetricsRegistry` snapshots
are read from, and the harvesting glue that absorbs the per-component
stats dataclasses into the registry with labels.

This module deliberately imports nothing from the higher layers —
harvesting is duck-typed over the domain object — so ``obs`` stays at
the bottom of the layer DAG, beside ``message``, importable from
everywhere above.
"""

from __future__ import annotations

from typing import Callable, Optional

from .export import summarize_spans
from .metrics import MetricsRegistry
from .span import Tracer, well_formed_traces


class ObsCollector:
    """Trace + metric collection for one run."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self.tracer = Tracer(clock)
        self.registry = MetricsRegistry()

    # ------------------------------------------------------------------
    # Simulator profiling hook
    # ------------------------------------------------------------------
    def profile_simulator(self, sim) -> None:
        """Install the per-event profiling hook on a ``Simulator``.

        Every fired event increments ``sim.events`` labelled by the
        callback's qualified name — which protocol activity dominates a
        run becomes a one-snapshot question. The hook costs one dict
        update per event when installed and nothing when absent.
        """
        events = self.registry.counter(
            "sim.events", help="events fired, by callback"
        )

        def on_event(event) -> None:
            callback = event.callback
            label = getattr(callback, "__qualname__", None)
            if label is None:
                label = type(callback).__name__
            events.inc(callback=label)

        sim.event_hook = on_event

    # ------------------------------------------------------------------
    # Harvesting component stats into the registry
    # ------------------------------------------------------------------
    def harvest_domain(self, domain) -> None:
        """Absorb a domain's per-component stats, labelled.

        Duck-typed over :class:`~repro.experiments.domain.InsDomain`:
        INR counters gain an ``inr`` label (drop causes additionally a
        ``cause`` label via ``drops_by_cause``), per-vspace name counts
        become gauges, client counters gain a ``client`` label, link
        counters a ``link`` label. Safe to call repeatedly only on
        fresh registries; harvest once, at the end of a run.
        """
        for inr in domain.inrs:
            self.registry.ingest(
                "inr", inr.stats.snapshot(), inr=inr.address
            )
            names = self.registry.gauge(
                "inr.names", help="live names per vspace"
            )
            for vspace in sorted(inr.trees):
                names.set(
                    float(inr.name_count(vspace)),
                    inr=inr.address,
                    vspace=vspace,
                )
        for client in domain.clients:
            self.registry.ingest(
                "client",
                client.stats.snapshot(),
                client=f"{client.address}:{client.port}",
            )
        for (a, b), link in sorted(domain.network.links):
            self.registry.ingest(
                "link", link.stats.snapshot(), link=f"{a}|{b}"
            )

    # ------------------------------------------------------------------
    # Snapshots and summaries
    # ------------------------------------------------------------------
    @property
    def spans(self):
        return self.tracer.spans

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()

    def metrics_json(self) -> str:
        return self.registry.to_json()

    def span_summary(self) -> dict:
        return summarize_spans(self.tracer.spans)

    def trace_defects(self) -> dict:
        """trace_id -> well-formedness defects (empty when clean)."""
        return well_formed_traces(self.tracer.spans)

    def observability_payload(self) -> dict:
        """The ``observability`` section a BENCH artifact embeds."""
        return {
            "span_summary": self.span_summary(),
            "metrics": self.metrics_snapshot(),
        }
