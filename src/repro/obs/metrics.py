"""A unified metrics registry: counters, gauges, histograms.

One registry per run absorbs what used to be scattered per-component
counter dataclasses (``InrStats``, ``ClientStats``, ``LinkStats``)
behind a single ``snapshot() -> dict`` with label support — per-INR,
per-vspace, per-drop-cause — so experiments and the chaos harness read
one schema instead of plucking fields from three.

Determinism contract: a snapshot is a pure function of the metric
operations applied, label keys are canonically sorted, and
:meth:`MetricsRegistry.to_json` emits ``sort_keys=True`` JSON — two
same-seed runs produce byte-identical snapshots. Values are whatever
the caller observed (sim-clock durations, counts); nothing in here
reads a clock or an RNG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds: spans from
#: sub-millisecond cache answers to multi-second chaos-retry tails.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelValues:
    """Canonical (sorted, stringified) form of one label set."""
    return tuple((str(k), str(labels[k])) for k in sorted(labels))


def _key_text(key: LabelValues) -> str:
    """Render a canonical label set as ``a=1,b=x`` ('' for no labels)."""
    return ",".join(f"{name}={value}" for name, value in key)


class _Metric:
    """Shared family plumbing: a name and per-label-set storage."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def snapshot(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def snapshot(self) -> dict:
        return {
            _key_text(key): self._values[key]
            for key in sorted(self._values)
        }


class Gauge(_Metric):
    """A point-in-time value, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        return {
            _key_text(key): self._values[key]
            for key in sorted(self._values)
        }


class Histogram(_Metric):
    """Observations bucketed at fixed boundaries, per label set.

    Buckets are cumulative-style upper bounds plus an implicit +Inf;
    boundaries are fixed at construction so every snapshot of a family
    shares one schema (the Prometheus convention).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bounds = bounds
        #: label set -> (per-bucket counts + overflow, total count, sum)
        self._series: Dict[LabelValues, List[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            # bucket counts..., +Inf count, total count, sum
            series = [0.0] * (len(self.bounds) + 3)
            self._series[key] = series
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                series[index] += 1
                break
        else:
            series[len(self.bounds)] += 1
        series[-2] += 1
        series[-1] += value

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return int(series[-2]) if series else 0

    def percentile(self, q: float, **labels: object) -> float:
        """Approximate quantile: the upper bound of the bucket the
        q-th observation falls in (+Inf reports the last bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if not series or series[-2] == 0:
            return float("nan")
        rank = q * series[-2]
        seen = 0.0
        for index, bound in enumerate(self.bounds):
            seen += series[index]
            if seen >= rank:
                return bound
        return self.bounds[-1]

    QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

    def snapshot(self) -> dict:
        """Per-series buckets, count, sum — and deterministic p50/p95/
        p99 summaries (bucket upper bounds, the same statistic
        :meth:`percentile` reports), so engine reports and the bench
        gate can compare tail latency without reprocessing buckets."""
        out = {}
        for key in sorted(self._series):
            series = self._series[key]
            buckets = {
                f"{bound!r}": series[index]
                for index, bound in enumerate(self.bounds)
            }
            buckets["+Inf"] = series[len(self.bounds)]
            labels = dict(key)
            out[_key_text(key)] = {
                "buckets": buckets,
                "count": series[-2],
                "sum": series[-1],
                "quantiles": {
                    name: self.percentile(q, **labels)
                    for name, q in self.QUANTILES
                },
            }
        return out


class MetricsRegistry:
    """Owns every metric family of one run.

    Families are created on first use (``counter()`` etc. get-or-create
    by name) so instrumentation sites never race over declaration.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, name: str, factory, kind: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, **kwargs)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, "counter", help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, "gauge", help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(name, Histogram, "histogram", help=help, buckets=buckets)

    def ingest(
        self,
        prefix: str,
        values: Mapping[str, object],
        **labels: object,
    ) -> None:
        """Absorb a stats ``snapshot()`` dict as labelled counters.

        Numeric scalar fields become counters named ``prefix.field``;
        nested mappings (e.g. ``drops_by_cause``) become one counter
        with the inner key as an extra ``cause`` label. Non-numeric
        fields are skipped — the registry carries measurements, not
        configuration.
        """
        for field_name in sorted(values):
            value = values[field_name]
            if isinstance(value, Mapping):
                for inner in sorted(value):
                    inner_value = value[inner]
                    if isinstance(inner_value, (int, float)):
                        self.counter(f"{prefix}.{field_name}").inc(
                            float(inner_value), cause=inner, **labels
                        )
            elif isinstance(value, bool):
                continue
            elif isinstance(value, (int, float)):
                self.counter(f"{prefix}.{field_name}").inc(
                    float(value), **labels
                )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every family's current state, grouped by kind, keys sorted."""
        out: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        group = {"counter": "counters", "gauge": "gauges",
                 "histogram": "histograms"}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[group[metric.kind]][name] = metric.snapshot()
        return out

    def to_json(self) -> str:
        """Canonical JSON: byte-identical across same-seed runs."""
        import json

        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"


def merge_counts(
    snapshots: Iterable[Mapping[str, object]],
) -> Dict[str, float]:
    """Sum the numeric fields of several stats snapshots.

    The aggregation the availability report needs: total retries across
    all clients, total sheds across all INRs — without plucking fields
    one by one. Nested mappings are summed per inner key under
    ``field.key``.
    """
    totals: Dict[str, float] = {}
    for snap in snapshots:
        for field_name in snap:
            value = snap[field_name]
            if isinstance(value, bool):
                continue
            if isinstance(value, Mapping):
                for inner, inner_value in value.items():
                    if isinstance(inner_value, (int, float)):
                        key = f"{field_name}.{inner}"
                        totals[key] = totals.get(key, 0.0) + inner_value
            elif isinstance(value, (int, float)):
                totals[field_name] = totals.get(field_name, 0.0) + value
    return totals
