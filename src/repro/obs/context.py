"""The trace context: causal metadata carried across hops.

A :class:`TraceContext` is the Dapper-style triple (trace_id, span_id,
parent_span_id) that rides in the wire header of an INS packet (and as
an optional field of control-plane requests) so every hop a request
takes can attach its span to the same causal tree. Identifiers are
plain integers allocated by the :class:`~.span.Tracer` from counters,
never from wall clocks or OS entropy, so two same-seed runs assign
byte-identical ids.

The wire form is three unsigned 64-bit big-endian integers (24 bytes),
appended to the fixed packet header only when the sender is tracing —
untraced packets carry zero extra bytes (see ``docs/PROTOCOL.md`` §9).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: struct layout of the on-wire trace context: trace, span, parent.
_WIRE = struct.Struct("!QQQ")

#: Bytes a trace context occupies on the wire.
TRACE_CONTEXT_SIZE = _WIRE.size

#: ``parent_span_id`` of a root span (no parent).
NO_PARENT = 0


@dataclass(frozen=True)
class TraceContext:
    """Identifies one span within one causal trace."""

    trace_id: int
    span_id: int
    parent_span_id: int = NO_PARENT

    def pack(self) -> bytes:
        """Serialize to the 24-byte wire form."""
        return _WIRE.pack(self.trace_id, self.span_id, self.parent_span_id)

    def pack_into(self, buffer, offset: int = 0) -> None:
        """Serialize in place at ``offset`` within a writable buffer."""
        _WIRE.pack_into(
            buffer, offset, self.trace_id, self.span_id, self.parent_span_id
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "TraceContext":
        """Decode a context packed at ``offset`` within ``data``."""
        trace_id, span_id, parent_span_id = _WIRE.unpack_from(data, offset)
        return cls(
            trace_id=trace_id, span_id=span_id, parent_span_id=parent_span_id
        )

    def as_dict(self) -> dict:
        """Stable-key-order dict form (for JSONL span records)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    def __str__(self) -> str:
        return f"{self.trace_id:x}/{self.span_id:x}<-{self.parent_span_id:x}"
