"""Spans and the tracer that records them.

A :class:`Span` covers one unit of causally-attributed work — a client
request from issue to settle, or one INR hop from packet arrival to the
forwarding/delivery/drop decision. Spans form trees through the
``parent_span_id`` carried by :class:`~.context.TraceContext`; the root
span of a trace has parent ``0``.

The :class:`Tracer` is deliberately dumb: it hands out counter-based
ids, timestamps spans with the clock it was constructed with (always
the simulator's virtual ``now`` in this repo — wall clocks are banned
by the obs lint profile), and keeps every span in memory for the
exporters. There is no sampling; simulations are small enough to keep
everything, and determinism matters more than memory here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from .context import NO_PARENT, TraceContext

#: Span status while still open; exporters treat it as "unfinished".
STATUS_OPEN = "open"

#: The happy-path terminal status.
STATUS_OK = "ok"

#: Prefix for statuses that attribute a packet drop to its cause, e.g.
#: ``drop:no-route`` mirroring ``InrStats.drops_no_route``.
DROP_PREFIX = "drop:"


@dataclass
class Span:
    """One timed, attributed unit of work inside a trace."""

    trace_id: int
    span_id: int
    parent_span_id: int
    name: str
    node: str
    start: float
    end: Optional[float] = None
    status: str = STATUS_OPEN
    tags: Dict[str, object] = field(default_factory=dict)
    #: timestamped free-form annotations, in event order.
    events: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def context(self) -> TraceContext:
        """The context a child hop should carry: this span as parent."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_span_id=self.parent_span_id,
        )

    @property
    def is_root(self) -> bool:
        return self.parent_span_id == NO_PARENT

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_drop(self) -> bool:
        return self.status.startswith(DROP_PREFIX)

    @property
    def drop_cause(self) -> Optional[str]:
        """The ``drops_*`` cause when this span recorded a drop."""
        return self.status[len(DROP_PREFIX):] if self.is_drop else None

    def annotate(self, time: float, text: str) -> None:
        """Append a timestamped note (retry attempts, next hops...)."""
        self.events.append((time, text))

    def as_dict(self) -> dict:
        """Stable-key-order dict form for the JSONL exporter."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "tags": {key: self.tags[key] for key in sorted(self.tags)},
            "events": [list(event) for event in self.events],
        }


ParentRef = Union[TraceContext, Span, None]


class Tracer:
    """Allocates span ids, timestamps spans, and retains them.

    ``clock`` must be the simulation's virtual clock (``lambda:
    sim.now``); ids come from counters so a fixed seed yields identical
    traces. A tracer is shared by every process in a domain — the
    simulation is single-threaded, so no locking is needed.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.spans: List[Span] = []

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        node: str = "",
        parent: ParentRef = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span; a ``parent`` of None starts a fresh trace."""
        if parent is None:
            trace_id = next(self._trace_ids)
            parent_span_id = NO_PARENT
        else:
            trace_id = parent.trace_id
            parent_span_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_span_id=parent_span_id,
            name=name,
            node=node,
            start=self._clock(),
            tags=dict(tags) if tags else {},
        )
        self.spans.append(span)
        return span

    def end_span(self, span: Span, status: str = STATUS_OK) -> Span:
        """Close a span; idempotent (the first close wins)."""
        if span.end is None:
            span.end = self._clock()
            span.status = status
        return span

    def annotate(self, span: Span, text: str) -> None:
        span.annotate(self._clock(), text)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.finished]

    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace id, each group in start order."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self.spans = []


# ----------------------------------------------------------------------
# Span-tree analysis
# ----------------------------------------------------------------------
def trace_tree_errors(spans: List[Span]) -> List[str]:
    """Well-formedness defects of one trace's span list.

    A well-formed trace has exactly one root, every non-root span's
    parent present in the trace, unique span ids, and no span ending
    before it starts. Packet duplication legitimately yields sibling
    spans with the same parent; that is not a defect.
    """
    errors: List[str] = []
    if not spans:
        return ["trace has no spans"]
    ids = [span.span_id for span in spans]
    if len(set(ids)) != len(ids):
        errors.append("duplicate span ids")
    roots = [span for span in spans if span.is_root]
    if len(roots) != 1:
        errors.append(f"expected exactly one root span, found {len(roots)}")
    known = set(ids)
    for span in spans:
        if not span.is_root and span.parent_span_id not in known:
            errors.append(
                f"span {span.span_id} ({span.name}) has unknown parent "
                f"{span.parent_span_id}"
            )
        if span.end is not None and span.end < span.start:
            errors.append(f"span {span.span_id} ends before it starts")
    return errors


def well_formed_traces(spans: List[Span]) -> Dict[int, List[str]]:
    """trace_id -> defects, for every trace with at least one defect."""
    grouped: Dict[int, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    defects = {}
    for trace_id in sorted(grouped):
        errors = trace_tree_errors(grouped[trace_id])
        if errors:
            defects[trace_id] = errors
    return defects
