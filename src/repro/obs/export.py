"""Exporters: JSONL dumps, a human timeline, Chrome trace events.

Three consumers, three formats:

- **JSONL** (:func:`write_spans_jsonl`, :func:`write_metrics_json`) —
  machine-readable artifacts checked into ``benchmarks/results`` and
  uploaded by CI; one span per line, stable key order.
- **timeline** (:func:`render_timeline`) — a human-readable rendering
  of one trace's span tree, indented by causality, for terminal
  debugging of a single slow or dropped request.
- **Chrome trace events** (:func:`to_chrome_trace`,
  :func:`write_chrome_trace`) — the ``chrome://tracing`` / Perfetto
  JSON schema, so a whole-domain run can be opened in a real trace
  viewer: one row per node, complete ("X") events per span,
  microsecond timestamps.

All output is a pure function of the span/metric state, so same-seed
runs export byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .span import Span

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One sorted-key JSON object per line, in (start, span_id) order."""
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    return "".join(
        json.dumps(span.as_dict(), sort_keys=True) + "\n" for span in ordered
    )


def write_spans_jsonl(path: PathLike, spans: Sequence[Span]) -> None:
    with open(path, "w") as handle:
        handle.write(spans_to_jsonl(spans))


def write_metrics_json(path: PathLike, snapshot: dict) -> None:
    """A metrics snapshot as canonical (sorted, indented) JSON."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Human timeline
# ----------------------------------------------------------------------
def render_timeline(
    spans: Sequence[Span], trace_id: Optional[int] = None
) -> str:
    """Indented causal rendering of one trace (or every trace).

    ::

        trace 3 (2 spans, 1.204ms)
          0.000000s +1.204ms client.request client-1 ok
            0.000412s +0.310ms inr.resolve inr-2 ok
    """
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    trace_ids = [trace_id] if trace_id is not None else sorted(by_trace)
    lines: List[str] = []
    for tid in trace_ids:
        members = by_trace.get(tid, [])
        if not members:
            continue
        start = min(span.start for span in members)
        stop = max(span.end if span.end is not None else span.start
                   for span in members)
        lines.append(
            f"trace {tid} ({len(members)} spans, "
            f"{(stop - start) * 1000:.3f}ms)"
        )
        children: Dict[int, List[Span]] = {}
        for span in members:
            children.setdefault(span.parent_span_id, []).append(span)
        known = {span.span_id for span in members}

        def emit(span: Span, depth: int) -> None:
            lines.append(
                f"{'  ' * (depth + 1)}{span.start:.6f}s "
                f"+{span.duration * 1000:.3f}ms {span.name} "
                f"{span.node} {span.status}"
                + (f" [{', '.join(t for _t, t in span.events)}]"
                   if span.events else "")
            )
            for child in sorted(
                children.get(span.span_id, []),
                key=lambda s: (s.start, s.span_id),
            ):
                emit(child, depth + 1)

        # Roots plus orphans (parent outside this dump) at depth 0.
        tops = [
            span for span in members
            if span.is_root or span.parent_span_id not in known
        ]
        for top in sorted(tops, key=lambda s: (s.start, s.span_id)):
            emit(top, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def to_chrome_trace(spans: Sequence[Span]) -> dict:
    """The ``chrome://tracing`` / Perfetto JSON object for ``spans``.

    Nodes map to pids (one process row per simulated host), traces map
    to tids within the row, and every span becomes a complete ("X")
    event with microsecond timestamps. Unfinished spans export with
    zero duration and an ``unfinished`` arg rather than vanishing.
    """
    nodes = sorted({span.node for span in spans})
    pid_of = {node: index + 1 for index, node in enumerate(nodes)}
    events: List[dict] = []
    for node in nodes:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[node],
                "tid": 0,
                "args": {"name": node or "(unknown node)"},
            }
        )
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_span_id": span.parent_span_id,
            "status": span.status,
        }
        for key in sorted(span.tags):
            args[f"tag.{key}"] = span.tags[key]
        if span.events:
            args["events"] = [f"{t:.6f}s {text}" for t, text in span.events]
        if not span.finished:
            args["unfinished"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.status,
                "ph": "X",
                "pid": pid_of[span.node],
                "tid": span.trace_id,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: PathLike, spans: Sequence[Span]) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(spans), handle, indent=1, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Summaries embedded in BENCH_*.json artifacts
# ----------------------------------------------------------------------
def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1))))
    )
    return sorted_values[index]


def summarize_spans(spans: Sequence[Span]) -> dict:
    """The span-derived numbers a benchmark artifact embeds.

    Per span name: count and p50/p95/p99 duration (seconds); plus drop
    attribution (``drops_*`` causes seen as span statuses, with counts)
    and trace-level shape (traces, spans, max tree depth observed as
    hops per trace).
    """
    by_name: Dict[str, List[float]] = {}
    drops: Dict[str, int] = {}
    traces: Dict[int, int] = {}
    for span in spans:
        if span.finished:
            by_name.setdefault(span.name, []).append(span.duration)
        if span.is_drop:
            cause = span.drop_cause
            drops[cause] = drops.get(cause, 0) + 1
        traces[span.trace_id] = traces.get(span.trace_id, 0) + 1
    summary_by_name = {}
    for name in sorted(by_name):
        durations = sorted(by_name[name])
        summary_by_name[name] = {
            "count": len(durations),
            "p50_s": round(_percentile(durations, 0.50), 9),
            "p95_s": round(_percentile(durations, 0.95), 9),
            "p99_s": round(_percentile(durations, 0.99), 9),
        }
    return {
        "spans": len(spans),
        "traces": len(traces),
        "max_spans_per_trace": max(traces.values()) if traces else 0,
        "by_name": summary_by_name,
        "drop_attribution": {cause: drops[cause] for cause in sorted(drops)},
    }
