"""Text and JSON reporters over a :class:`~repro.lint.engine.LintResult`.

The text form is for humans at a terminal; the JSON form is the stable
machine interface CI archives as an artifact, with a versioned schema
so downstream tooling can rely on it.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import SEVERITY_ERROR, LintResult

#: Version of the JSON report schema (bump on breaking change).
REPORT_SCHEMA_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """``path:line:col: severity [rule] message`` plus a summary."""
    out: List[str] = []
    for finding in result.findings:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity} [{finding.rule}] {finding.message}"
        )
        source = finding.source.strip()
        if source:
            out.append(f"    {source}")
    for entry in result.stale_baseline:
        out.append(
            f"{entry.path}: warning [stale-baseline] baseline entry for "
            f"{entry.rule} ({entry.fingerprint}, x{entry.count}) no longer "
            "matches anything; prune it (repro-lint --prune-baseline)"
        )
    if verbose and result.suppressed:
        out.append("")
        for finding in sorted(result.suppressed, key=lambda f: f.sort_key()):
            out.append(
                f"{finding.path}:{finding.line}: suppressed [{finding.rule}] "
                "by pragma"
            )
    out.append("")
    out.append(
        f"{result.files_scanned} files scanned: "
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s), "
        f"{len(result.suppressed)} pragma-suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr"
        f"{'y' if len(result.stale_baseline) == 1 else 'ies'}"
    )
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": REPORT_SCHEMA_VERSION,
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
            "by_rule": {rule: by_rule[rule] for rule in sorted(by_rule)},
            # Additive (schema still v1): pass-2 and parse-cache info,
            # so CI can assert the content-hash cache is exercised.
            "project_rules": sorted(result.project_rules),
            "parse_cache": {
                "hits": result.cache_hits,
                "misses": result.cache_misses,
            },
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [
            finding.to_dict()
            for finding in sorted(
                result.suppressed, key=lambda f: f.sort_key()
            )
        ],
        "stale_baseline": [
            entry.to_dict() for entry in result.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
