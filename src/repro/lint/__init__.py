"""``repro.lint`` — static analysis for the INS reproduction.

A pluggable rule engine that parses every file once (AST plus
import/alias and pragma tables) and runs registered rules over it,
enforcing the invariants the runtime cannot cheaply check: determinism
(no ambient randomness, wall clocks, or hash-order iteration on
scheduling/wire paths), the declared layer DAG, and protocol hygiene.
Violations are fixed, justified in place with a pragma, or recorded in
the checked-in baseline — and stale suppressions are themselves
reported, so escapes expire from the codebase the way the paper's
soft-state name records expire from a resolver.

Run it as ``python -m repro.lint [paths...]`` or via the
``repro-lint`` console script; the full suite also runs as a tier-1
pytest (``tests/lint/test_tree_clean.py``), so CI and pytest share one
source of truth. See ``docs/LINT.md`` for the rule reference.

This package imports nothing else from ``repro`` — it sits outside the
runtime layer DAG it enforces.
"""

from .baseline import Baseline, BaselineEntry
from .config import DEFAULT_PROFILES, STRICT, Profile, profile_for
from .engine import (
    BAD_PRAGMA,
    PARSE_ERROR,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    USELESS_PRAGMA,
    Engine,
    FileContext,
    Finding,
    LintResult,
)
from .report import REPORT_SCHEMA_VERSION, render_json, render_text
from .rules import REGISTRY, Rule, create_rules, register

__all__ = [
    "BAD_PRAGMA",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_PROFILES",
    "Engine",
    "FileContext",
    "Finding",
    "LintResult",
    "PARSE_ERROR",
    "Profile",
    "REGISTRY",
    "REPORT_SCHEMA_VERSION",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STRICT",
    "USELESS_PRAGMA",
    "create_rules",
    "profile_for",
    "register",
    "render_json",
    "render_text",
]
