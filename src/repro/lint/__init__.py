"""``repro.lint`` — static analysis for the INS reproduction.

A pluggable two-pass rule engine. Pass 1 parses every file once (AST
plus import/alias and pragma tables, content-hash cached across runs)
and runs the per-file rules, enforcing the invariants the runtime
cannot cheaply check: determinism (no ambient randomness, wall clocks,
or hash-order iteration on scheduling/wire paths), the declared layer
DAG, and protocol hygiene. Pass 2 assembles every parse into a
whole-program :class:`~repro.lint.project.ProjectModel` (symbol table,
import graph, call graph) and runs the project rules over it —
interprocedural entropy taint, protocol-surface exhaustiveness, and
node isolation — the properties no single file can witness.
Violations are fixed, justified in place with a pragma, or recorded in
the checked-in baseline — and stale suppressions are themselves
reported, so escapes expire from the codebase the way the paper's
soft-state name records expire from a resolver.

Run it as ``python -m repro.lint [paths...]`` or via the
``repro-lint`` console script; the full suite also runs as a tier-1
pytest (``tests/lint/test_tree_clean.py``), so CI and pytest share one
source of truth. See ``docs/LINT.md`` for the rule reference.

This package imports nothing else from ``repro`` — it sits outside the
runtime layer DAG it enforces.
"""

from .baseline import Baseline, BaselineEntry
from .config import DEFAULT_PROFILES, STRICT, Profile, profile_for
from .engine import (
    BAD_PRAGMA,
    PARSE_ERROR,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    USELESS_PRAGMA,
    Engine,
    FileContext,
    Finding,
    LintResult,
)
from .project import ProjectModel
from .report import REPORT_SCHEMA_VERSION, render_json, render_text
from .rules import REGISTRY, ProjectRule, Rule, create_rules, register

__all__ = [
    "BAD_PRAGMA",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_PROFILES",
    "Engine",
    "FileContext",
    "Finding",
    "LintResult",
    "PARSE_ERROR",
    "Profile",
    "ProjectModel",
    "ProjectRule",
    "REGISTRY",
    "REPORT_SCHEMA_VERSION",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STRICT",
    "USELESS_PRAGMA",
    "create_rules",
    "profile_for",
    "register",
    "render_json",
    "render_text",
]
