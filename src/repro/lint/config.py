"""Per-directory rule profiles.

The same rule pack runs everywhere, but different parts of the tree
legitimately live under different regimes: benchmark drivers may read
the host wall clock (they measure the host, like the paper's Figure 12
lookup-rate measurements), while simulation code under ``src/`` never
may. A profile names which rules are disabled for a directory and which
per-rule options are overridden, so CI and pytest share one source of
truth instead of each hard-coding its own exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Profile:
    """Rule configuration applied to every file under one top directory."""

    name: str
    disable: Tuple[str, ...] = ()
    #: rule id -> {option name: value} overrides.
    rule_options: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )


#: The strict regime: every rule, default options.
STRICT = Profile(name="strict")

#: Profiles keyed by a path prefix relative to the repo root; the
#: longest matching prefix wins, so a subtree can override its parent.
DEFAULT_PROFILES: Dict[str, Profile] = {
    "src": Profile(name="src"),
    # The observability layer is where all timing comes from: it must
    # never consult the host. Pin the wall-clock ban explicitly so a
    # future relaxation of the src profile cannot silently reach obs.
    "src/repro/obs": Profile(
        name="obs",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": False}},
    ),
    # Custody deadlines are absolute virtual times compared across
    # crashes and handoffs; a wall-clock read here would silently break
    # same-seed determinism, so the ban is pinned like obs's.
    "src/repro/dtn": Profile(
        name="dtn",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": False}},
    ),
    # Delegation handoffs are decided by fenced ids and virtual-time
    # retransmission deadlines replayed across crash/restart; a wall
    # clock read anywhere in the protocol, its wire codecs, or the
    # chaos harness that fences it would desynchronize the two sides'
    # timers and break the seeded crash matrix, so the ban is pinned
    # per module like obs's and dtn's.
    "src/repro/resolver/delegation.py": Profile(
        name="delegation",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": False}},
    ),
    "src/repro/message/delegation.py": Profile(
        name="delegation",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": False}},
    ),
    "src/repro/chaos/delegation.py": Profile(
        name="delegation",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": False}},
    ),
    # The experiment engine's data side (specs, reports, schemas, the
    # bench gate) must be byte-reproducible, so the wall-clock ban is
    # pinned there; only the runner side below may time the host.
    "src/repro/xp": Profile(
        name="xp",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": False}},
    ),
    # Runner/workloads/cli execute benchmarks and may collect optional
    # wall-clock timings (kept out of the deterministic report body);
    # the CLI additionally stamps generated_at outside the run.
    "src/repro/xp/runner.py": Profile(
        name="xp-runner",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": True}},
    ),
    "src/repro/xp/workloads.py": Profile(
        name="xp-runner",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": True}},
    ),
    "src/repro/xp/cli.py": Profile(
        name="xp-runner",
        rule_options={"no-ambient-entropy": {"allow_wall_clock": True}},
    ),
    "examples": Profile(name="examples"),
    # Tests exercise internals across layers (the layering DAG governs
    # the package, not its tests) and deliberately assert *exact*
    # scheduler arithmetic (``sim.now == 2.5``) to pin event-loop
    # behavior, so float-time equality is sanctioned there.
    # Tests also reach across nodes by construction (asserting on both
    # resolvers' stats after a partition is the whole point), so the
    # simulator's isolation discipline is not enforced there.
    "tests": Profile(
        name="tests",
        disable=("layering", "no-float-time-eq", "node-isolation"),
    ),
    # Benchmark drivers time the host, so the wall clock is sanctioned
    # there — ambient randomness still is not (seeded RNGs keep
    # benchmark workloads reproducible).
    "benchmarks": Profile(
        name="benchmarks",
        disable=("layering", "node-isolation"),
        rule_options={"no-ambient-entropy": {"allow_wall_clock": True}},
    ),
}


def profile_for(
    rel_path: str, profiles: Optional[Dict[str, Profile]] = None
) -> Profile:
    """Pick the profile for a file from its repo-relative path.

    The longest table prefix (on ``/`` boundaries) wins, so
    ``src/repro/obs`` overrides ``src`` for files beneath it. Accepts a
    profile name directly as well, so tests can force one.
    """
    table = DEFAULT_PROFILES if profiles is None else profiles
    if rel_path in table:
        return table[rel_path]
    normalized = rel_path.replace("\\", "/").lstrip("./")
    parts = normalized.split("/")
    for depth in range(len(parts), 0, -1):
        prefix = "/".join(parts[:depth])
        if prefix in table:
            return table[prefix]
    return STRICT
