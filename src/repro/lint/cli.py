"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 — no error-severity findings (warnings do not fail the
build); 1 — at least one error finding; 2 — usage or configuration
error. CI runs ``--format json`` and archives the report; pytest runs
the same engine through the tier-1 blanket test, so both share one
source of truth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .config import DEFAULT_PROFILES
from .engine import Engine
from .report import render_json, render_text
from .rules import REGISTRY

#: Directories scanned when no paths are given (those that exist).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for the INS reproduction: determinism, "
            "layering, and protocol-hygiene invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: "
        + " ".join(DEFAULT_PATHS) + ", those that exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root findings are reported relative to "
        "(default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} "
        "when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline without stale entries",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run exclusively (per-file and "
        "project rules alike; unknown ids are a usage error)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also report pragma-suppressed findings (text format)",
    )
    return parser


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            cls = REGISTRY[rule_id]
            scope = getattr(cls, "scope", "file")
            print(f"{rule_id} [{scope}] ({cls.severity}): {cls.summary}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro-lint: root {root} is not a directory", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [root / name for name in DEFAULT_PATHS if (root / name).is_dir()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        joined = ", ".join(str(p) for p in missing)
        print(f"repro-lint: no such path(s): {joined}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else \
        root / DEFAULT_BASELINE_NAME
    baseline = Baseline()
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    try:
        engine = Engine(
            profiles=DEFAULT_PROFILES,
            baseline=baseline,
            root=root,
            select=_split(args.select),
            ignore=_split(args.ignore),
        )
        result = engine.run(paths)
    except ValueError as exc:  # unknown rule ids, bad options
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings + result.baselined).save(
            baseline_path
        )
        print(
            f"wrote {baseline_path} with "
            f"{len(result.findings) + len(result.baselined)} finding(s)"
        )
        return 0

    if args.prune_baseline:
        pruned = baseline.pruned(result.stale_baseline)
        pruned.save(baseline_path)
        print(
            f"pruned {len(result.stale_baseline)} stale entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} from "
            f"{baseline_path}"
        )
        result.stale_baseline = []

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
