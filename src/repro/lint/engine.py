"""The two-pass whole-program rule engine.

**Pass 1** parses every file exactly once into a :class:`FileContext` —
AST, source lines, import/alias tables, pragma table, and (for files
inside ``repro``) the module's dotted name and layer package — and runs
the per-file rules over it. Parses are cached across runs keyed by
content hash, so re-running the engine (pytest's blanket test, the CI
wall-time budget check) re-parses only files that changed.

**Pass 2** assembles every context into one
:class:`~repro.lint.project.ProjectModel` and runs the project rules
(:class:`~repro.lint.rules.ProjectRule`) over it once — that is where
cross-file properties (entropy taint reachability, protocol-surface
exhaustiveness, node isolation) are checked. Project findings anchor to
real (path, line) spots, so pragma accounting is deferred until after
pass 2: a pragma on a line can suppress a cross-file finding, and a
pragma left behind after the cross-file path is fixed becomes a
``USELESS_PRAGMA`` finding like any other.

The design mirrors how the paper treats correctness state as soft
state: violations must either be fixed, justified in place (pragma), or
recorded in the baseline — and stale baseline entries / useless pragmas
are themselves findings, so suppressions expire instead of accumulating.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineEntry
from .config import Profile, profile_for
from .pragmas import Pragma, parse_pragmas

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Findings synthesized by the engine itself (not registered rules).
PARSE_ERROR = "parse-error"
BAD_PRAGMA = "bad-pragma"
USELESS_PRAGMA = "useless-pragma"

#: Directory names never descended into while discovering files.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", "results", "corpus", ".venv"}
)

#: Cross-run parse cache: (abs path, root, content sha1) -> FileContext.
#: Content-hash keyed, so an edited file re-parses and an untouched one
#: does not; bounded by wholesale eviction, which at worst costs one
#: re-parse sweep.
_PARSE_CACHE: Dict[Tuple[str, str, str], "FileContext"] = {}
_PARSE_CACHE_MAX = 4096


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR
    source: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes the rule id plus the stripped source text of the line, so
        entries survive unrelated edits that only shift line numbers.
        """
        basis = f"{self.rule}::{self.source.strip()}".encode("utf-8")
        return hashlib.sha1(basis).hexdigest()[:16]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "source": self.source.strip(),
        }


class FileContext:
    """Everything the rules need to know about one parsed file."""

    def __init__(self, path: Path, text: str, root: Optional[Path] = None):
        self.path = Path(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.root = Path(root) if root is not None else None
        self.rel_path = self._relative_path()
        self.module = self._module_name()
        self.package = self._layer_package()
        self.pragmas: Dict[int, Pragma] = parse_pragmas(text)
        #: local name -> dotted module path (``import x.y as z``).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> dotted origin (``from m import a as b`` -> ``m.a``).
        self.from_imports: Dict[str, str] = {}
        self._index_imports()

    # ------------------------------------------------------------------
    # Path / module identity
    # ------------------------------------------------------------------
    def _relative_path(self) -> str:
        if self.root is None:
            return self.path.as_posix()
        try:
            return self.path.resolve().relative_to(
                self.root.resolve()
            ).as_posix()
        except ValueError:
            return self.path.as_posix()  # outside the lint root

    def _module_name(self) -> Optional[str]:
        """Dotted module name when the file sits inside a ``repro`` tree.

        Anchors on a ``src/repro`` (or bare ``repro``) path segment so it
        works for the real tree and for synthetic trees in tests.
        """
        parts = self.path.resolve().parts if self.path.is_absolute() \
            else self.path.parts
        anchor = None
        for index in range(len(parts) - 1):
            if parts[index] == "src" and parts[index + 1] == "repro":
                anchor = index + 1
        if anchor is None:
            for index, part in enumerate(parts[:-1]):
                if part == "repro":
                    anchor = index
                    break
        if anchor is None:
            return None
        dotted = list(parts[anchor:])
        dotted[-1] = dotted[-1][: -len(".py")] if dotted[-1].endswith(".py") \
            else dotted[-1]
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)

    def _layer_package(self) -> Optional[str]:
        """Top-level ``repro`` subpackage this module belongs to."""
        if not self.module or not self.module.startswith("repro."):
            return None
        remainder = self.module.split(".")[1:]
        if len(remainder) == 1:
            # repro/__main__.py and other root modules are the public
            # facade above every layer; the layering rule exempts them.
            return None
        return remainder[0]

    # ------------------------------------------------------------------
    # Import / alias tables
    # ------------------------------------------------------------------
    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.module_aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.from_imports[bound] = f"{node.module}.{alias.name}"

    def resolve_name(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a name or attribute chain, through aliases.

        ``rnd.choice`` with ``import random as rnd`` resolves to
        ``random.choice``; ``datetime.now`` with ``from datetime import
        datetime`` resolves to ``datetime.datetime.now``. Names bound by
        assignment (e.g. a seeded ``rng``) resolve to ``None``.
        """
        chain: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = current.id
        if base in self.from_imports:
            origin = self.from_imports[base]
        elif base in self.module_aliases:
            origin = self.module_aliases[base]
        else:
            return None
        return ".".join([origin] + list(reversed(chain)))

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class LintResult:
    """Outcome of one engine run over a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    #: Parse-cache accounting for this run (content-hash keyed).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Ids of the project rules that ran in pass 2.
    project_rules: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


class Engine:
    """Runs the rule pack over files: pass 1 per file, pass 2 project."""

    def __init__(
        self,
        rules: Optional[Sequence] = None,
        profiles: Optional[Dict[str, Profile]] = None,
        baseline: Optional[Baseline] = None,
        root: Optional[Path] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
    ):
        # Imported lazily so ``engine`` has no import cycle with ``rules``.
        from .rules import REGISTRY, create_rules

        self._explicit_rules = list(rules) if rules is not None else None
        self._create_rules = create_rules
        self.profiles = profiles
        self.baseline = baseline or Baseline()
        self.root = Path(root) if root is not None else Path.cwd()
        self.select = frozenset(select) if select else None
        self.ignore = frozenset(ignore) if ignore else frozenset()
        self.excluded_dirs = frozenset(excluded_dirs)
        self._rule_cache: Dict[str, List] = {}
        known = set(REGISTRY)
        if self._explicit_rules is not None:
            known |= {rule.id for rule in self._explicit_rules}
        for label, ids in (("select", self.select), ("ignore", self.ignore)):
            unknown = set(ids or ()) - known
            if unknown:
                raise ValueError(
                    f"unknown rule ids in --{label}: "
                    f"{', '.join(sorted(unknown))} "
                    f"(known: {', '.join(sorted(known))})"
                )

    # ------------------------------------------------------------------
    # File discovery
    # ------------------------------------------------------------------
    def discover(self, paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_file() and path.suffix == ".py":
                files.append(path)
            elif path.is_dir():
                files.extend(self._walk(path))
        unique = sorted(set(files), key=lambda p: p.as_posix())
        return unique

    def _walk(self, directory: Path) -> List[Path]:
        found: List[Path] = []
        for child in sorted(directory.iterdir(), key=lambda p: p.name):
            if child.is_dir():
                if child.name in self.excluded_dirs or \
                        child.name.startswith("."):
                    continue
                found.extend(self._walk(child))
            elif child.suffix == ".py":
                found.append(child)
        return found

    # ------------------------------------------------------------------
    # Rule selection
    # ------------------------------------------------------------------
    def _rules_for(self, profile: Profile) -> List:
        """Per-file rules for one profile (project rules are pass 2)."""
        if profile.name in self._rule_cache:
            return self._rule_cache[profile.name]
        if self._explicit_rules is not None:
            rules = [
                rule for rule in self._explicit_rules
                if rule.id not in profile.disable
            ]
        else:
            rules = self._create_rules(
                ignore=profile.disable, rule_options=profile.rule_options
            )
        if self.select is not None:
            rules = [rule for rule in rules if rule.id in self.select]
        rules = [
            rule for rule in rules
            if rule.id not in self.ignore
            and getattr(rule, "scope", "file") != "project"
        ]
        self._rule_cache[profile.name] = rules
        return rules

    def _project_rules(self) -> List:
        """Project rules honoring select/ignore (profile ``disable``
        applies per finding path in pass 2, not here — a project rule
        runs once and its findings land all over the tree)."""
        if self._explicit_rules is not None:
            rules = list(self._explicit_rules)
        else:
            rules = self._create_rules()
        rules = [
            rule for rule in rules
            if getattr(rule, "scope", "file") == "project"
        ]
        if self.select is not None:
            rules = [rule for rule in rules if rule.id in self.select]
        return [rule for rule in rules if rule.id not in self.ignore]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, paths: Sequence[Path]) -> LintResult:
        result = LintResult()
        contexts: List[FileContext] = []
        by_path: Dict[str, List[Finding]] = {}
        raw_findings: List[Finding] = []

        # Pass 1: parse (cached) + per-file rules. Findings are staged
        # per path, NOT pragma-filtered yet — pass 2 may add more.
        for path in self.discover(paths):
            result.files_scanned += 1
            ctx, errors = self._context_for(path, result)
            if ctx is None:
                raw_findings.extend(errors)
                continue
            contexts.append(ctx)
            profile = profile_for(ctx.rel_path, self.profiles)
            staged = by_path.setdefault(ctx.rel_path, [])
            for rule in self._rules_for(profile):
                staged.extend(rule.check(ctx))

        # Pass 2: whole-program model + project rules. A project rule
        # runs once; its findings are dropped per path where the path's
        # profile disables the rule (mirroring per-file selection).
        project_rules = self._project_rules()
        if project_rules and contexts:
            from .project import ProjectModel

            model = ProjectModel(
                contexts, root=self.root, profiles=self.profiles
            )
            for rule in project_rules:
                result.project_rules.append(rule.id)
                for finding in rule.check_project(model):
                    profile = profile_for(finding.path, self.profiles)
                    if rule.id in profile.disable:
                        continue
                    by_path.setdefault(finding.path, []).append(finding)

        # Pragma accounting runs last so pragmas can cover cross-file
        # findings — and so a pragma orphaned by a fixed cross-file
        # path surfaces as USELESS_PRAGMA.
        for ctx in contexts:
            raw_findings.extend(
                self._apply_pragmas(
                    ctx, by_path.pop(ctx.rel_path, []), result.suppressed
                )
            )
        for leftovers in by_path.values():  # paths with no context
            raw_findings.extend(leftovers)

        raw_findings.sort(key=Finding.sort_key)
        kept, baselined, stale = self.baseline.apply(raw_findings)
        result.findings = kept
        result.baselined = baselined
        result.stale_baseline = stale
        return result

    def _context_for(
        self, path: Path, result: LintResult
    ) -> Tuple[Optional[FileContext], List[Finding]]:
        """Parse one file through the content-hash cache.

        Returns ``(context, [])`` or ``(None, [parse-error finding])``.
        On a cache hit, per-run pragma usage is reset so accounting from
        a previous run cannot leak into this one.
        """
        rel = self._rel(path)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            return None, [self._parse_error(rel, exc)]
        digest = hashlib.sha1(text.encode("utf-8")).hexdigest()
        key = (str(path.resolve()), str(self.root), digest)
        cached = _PARSE_CACHE.get(key)
        if cached is not None:
            result.cache_hits += 1
            for pragma in cached.pragmas.values():
                pragma.used_for.clear()
            return cached, []
        result.cache_misses += 1
        try:
            ctx = FileContext(path, text, root=self.root)
        except (SyntaxError, ValueError) as exc:
            return None, [self._parse_error(rel, exc)]
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[key] = ctx
        return ctx, []

    @staticmethod
    def _parse_error(rel: str, exc: Exception) -> Finding:
        lineno = getattr(exc, "lineno", None) or 1
        return Finding(
            rule=PARSE_ERROR,
            path=rel,
            line=int(lineno),
            col=0,
            message=f"could not parse file: {exc}",
        )

    def lint_text(
        self, text: str, path: str = "<memory>", profile: Optional[str] = None
    ) -> List[Finding]:
        """Lint one in-memory source string (test/corpus helper).

        Per-file rules only — a single string has no project to model;
        run :meth:`run` over a directory to exercise project rules.
        """
        ctx = FileContext(Path(path), text, root=self.root)
        chosen = profile_for(
            profile if profile is not None else ctx.rel_path, self.profiles
        )
        findings: List[Finding] = []
        for rule in self._rules_for(chosen):
            findings.extend(rule.check(ctx))
        return sorted(self._apply_pragmas(ctx, findings), key=Finding.sort_key)

    # ------------------------------------------------------------------
    # Pragma accounting
    # ------------------------------------------------------------------
    def _apply_pragmas(
        self,
        ctx: FileContext,
        findings: List[Finding],
        suppressed_sink: Optional[List[Finding]] = None,
    ) -> List[Finding]:
        kept: List[Finding] = []
        for finding in findings:
            pragma = ctx.pragmas.get(finding.line)
            if pragma is not None and pragma.covers(finding.rule):
                pragma.used_for.add(finding.rule)
                if pragma.justified:
                    if suppressed_sink is not None:
                        suppressed_sink.append(finding)
                    continue
            kept.append(finding)
        rel = self._rel(ctx.path)
        for line in sorted(ctx.pragmas):
            pragma = ctx.pragmas[line]
            if pragma.used_for and not pragma.justified:
                kept.append(
                    Finding(
                        rule=BAD_PRAGMA,
                        path=rel,
                        line=pragma.declared_line,
                        col=0,
                        message=(
                            "pragma suppresses "
                            f"{', '.join(sorted(pragma.used_for))} but gives "
                            "no justification; write "
                            "'# lint: disable=<rule> -- <why>'"
                        ),
                        source=ctx.source_line(pragma.declared_line),
                    )
                )
            elif not pragma.used_for:
                kept.append(
                    Finding(
                        rule=USELESS_PRAGMA,
                        path=rel,
                        line=pragma.declared_line,
                        col=0,
                        message=(
                            f"pragma for {', '.join(pragma.rules)} suppresses "
                            "nothing; remove it"
                        ),
                        severity=SEVERITY_WARNING,
                        source=ctx.source_line(pragma.declared_line),
                    )
                )
        return kept

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()
