"""Checked-in baseline of grandfathered findings.

A baseline lets the rule pack be adopted (or extended) without blocking
on fixing every historical violation at once: known findings are
recorded once, new findings still fail the build, and entries that no
longer match anything are reported as *stale* so the baseline shrinks
monotonically — soft state for technical debt, expiring the way the
paper's name records expire when no longer refreshed.

Entries are keyed by ``(rule, path, fingerprint)`` where the
fingerprint hashes the violating source line, not its line number, so
unrelated edits do not invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

BASELINE_VERSION = 1

#: Default baseline filename looked up at the lint root.
DEFAULT_BASELINE_NAME = ".lint-baseline.json"


@dataclass
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    count: int = 1

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.fingerprint)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "count": self.count,
        }


class Baseline:
    """Set of grandfathered findings with match/expire bookkeeping."""

    def __init__(self, entries: Optional[Sequence[BaselineEntry]] = None):
        self.entries: List[BaselineEntry] = list(entries or [])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        return cls(
            [
                BaselineEntry(
                    rule=item["rule"],
                    path=item["path"],
                    fingerprint=item["fingerprint"],
                    count=int(item.get("count", 1)),
                )
                for item in data.get("entries", [])
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(cls, findings: Sequence) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            counts[key] = counts.get(key, 0) + 1
        return cls(
            [
                BaselineEntry(rule=r, path=p, fingerprint=f, count=n)
                for (r, p, f), n in sorted(counts.items())
            ]
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def apply(self, findings: Sequence):
        """Split findings into (kept, baselined) and report stale entries.

        A finding is *baselined* (suppressed) while its entry has match
        budget left; an entry whose budget is never exhausted is *stale*
        with the unmatched remainder as its count — the signal to prune
        it from the checked-in file.
        """
        remaining: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            remaining[entry.key] = remaining.get(entry.key, 0) + entry.count
        kept, baselined = [], []
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                kept.append(finding)
        stale = [
            BaselineEntry(rule=r, path=p, fingerprint=f, count=n)
            for (r, p, f), n in sorted(remaining.items())
            if n > 0
        ]
        return kept, baselined, stale

    def pruned(self, stale: Sequence[BaselineEntry]) -> "Baseline":
        """A copy with stale match budget removed (count-aware)."""
        stale_counts = {entry.key: entry.count for entry in stale}
        pruned: List[BaselineEntry] = []
        for entry in self.entries:
            drop = stale_counts.get(entry.key, 0)
            keep = max(0, entry.count - drop)
            stale_counts[entry.key] = max(0, drop - entry.count)
            if keep:
                pruned.append(
                    BaselineEntry(
                        rule=entry.rule,
                        path=entry.path,
                        fingerprint=entry.fingerprint,
                        count=keep,
                    )
                )
        return Baseline(pruned)
