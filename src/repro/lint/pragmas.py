"""Pragma comments: targeted, justified suppression of lint findings.

A violation may be deliberate — figure-12 style experiments read the
host's ``perf_counter`` because they measure the *host*, not simulated
behavior. Such exceptions are annotated in place::

    started = time.time()  # lint: disable=no-ambient-entropy -- measuring host wall clock

The justification text after ``--`` is mandatory: a pragma without one
does not suppress anything and is itself reported (``bad-pragma``), so
unexplained escapes cannot accumulate. A pragma on a comment-only line
applies to the next source line; a pragma that suppresses nothing is
reported as ``useless-pragma`` so stale escapes expire from the
codebase the way soft-state name records expire from a resolver.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Matches ``disable=rule-a,rule-b -- why`` after the pragma marker.
PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s*--\s*(\S.*?))?\s*$"
)

#: Pragma rule name that suppresses every rule on the line.
DISABLE_ALL = "all"


@dataclass
class Pragma:
    """One parsed ``# lint: disable=...`` comment."""

    #: Source line the pragma *applies to* (the code line).
    line: int
    #: Physical line the comment sits on (== ``line`` for trailing pragmas).
    declared_line: int
    rules: Tuple[str, ...]
    justification: str
    #: Rules this pragma actually suppressed, filled in by the engine.
    used_for: Set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return DISABLE_ALL in self.rules or rule_id in self.rules

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def _comment_tokens(text: str) -> List[Tuple[int, str]]:
    """``(line, comment)`` for every comment token, via ``tokenize``.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma text
    inside string literals from being misread as real pragmas.
    """
    out: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a line scan; the file failed to tokenize and the
        # engine will surface a parse-error finding for it anyway.
        for lineno, line in enumerate(text.splitlines(), start=1):
            if "#" in line:
                out.append((lineno, line[line.index("#"):]))
    return out


def parse_pragmas(text: str) -> Dict[int, Pragma]:
    """Map *applicable* line number -> Pragma for one source file."""
    lines = text.splitlines()
    pragmas: Dict[int, Pragma] = {}
    for lineno, comment in _comment_tokens(text):
        match = PRAGMA_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        justification = (match.group(2) or "").strip()
        target = lineno
        code_before = lines[lineno - 1][: lines[lineno - 1].index("#")].strip() \
            if "#" in lines[lineno - 1] else ""
        if not code_before:
            # Comment-only line: the pragma governs the next source line.
            target = _next_source_line(lines, lineno)
        existing = pragmas.get(target)
        if existing is not None:
            merged = tuple(dict.fromkeys(existing.rules + rules))
            existing.rules = merged
            if justification:
                existing.justification = (
                    f"{existing.justification}; {justification}"
                    if existing.justification
                    else justification
                )
            continue
        pragmas[target] = Pragma(
            line=target,
            declared_line=lineno,
            rules=rules,
            justification=justification,
        )
    return pragmas


def _next_source_line(lines: List[str], after: int) -> int:
    for offset, line in enumerate(lines[after:], start=after + 1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return after
