"""Pass 2: the whole-program model project rules consume.

Pass 1 parses every file into a :class:`~repro.lint.engine.FileContext`;
this module assembles those parses into one :class:`ProjectModel` — a
module symbol table with import bindings chased through re-exports, a
class index with resolved bases and best-effort attribute types, a
function/method index, and a call graph — so rules can answer the
questions no per-file visitor can: *does this dtn helper transitively
reach a wall clock?* *is every exported wire message dispatched
somewhere reachable from the resolver's handler?* *does any node method
write state it can only legitimately reach through the message plane?*

Everything here is best-effort static resolution over Python's dynamic
surface. The resolver follows the forms this codebase actually uses
(absolute and relative imports, package ``__init__`` re-exports,
``self.attr = ClassName(...)`` component wiring, annotated parameters)
and returns ``None`` for anything fancier; project rules are written so
an unresolved edge means a *missed* finding, never a false one.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple,
)

from .config import Profile, profile_for

if TYPE_CHECKING:  # engine imports this module lazily; avoid the cycle
    from .engine import FileContext

#: Symbol kinds a dotted reference can resolve to.
KIND_MODULE = "module"
KIND_CLASS = "class"
KIND_FUNCTION = "function"
KIND_VAR = "var"
KIND_EXTERNAL = "external"

#: Constructor calls / literals whose module-level binding is mutable
#: shared state (mirrors the per-file ``no-mutable-default`` notion).
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)


def _is_mutable_binding(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None when the root isn't a Name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


class FunctionInfo:
    """One module-level function or class method."""

    def __init__(
        self,
        qname: str,
        module: str,
        path: str,
        node: ast.AST,
        class_qname: Optional[str] = None,
    ):
        self.qname = qname
        self.module = module
        self.path = path
        self.node = node
        self.class_qname = class_qname
        #: ``(callee_qname, call_node)`` for calls resolved to project
        #: functions/methods; filled by :meth:`ProjectModel._link_calls`.
        self.project_calls: List[Tuple[str, ast.Call]] = []
        #: ``(dotted_origin, call_node)`` for calls resolved outside the
        #: project (``time.time``, ``random.uniform``, ...).
        self.external_calls: List[Tuple[str, ast.Call]] = []

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]


class ClassInfo:
    """One class: resolved bases, methods, and component attr types."""

    def __init__(self, qname: str, module: str, path: str, node: ast.ClassDef):
        self.qname = qname
        self.module = module
        self.path = path
        self.node = node
        #: Base expressions as dotted chains, resolved lazily.
        self.base_chains: List[List[str]] = []
        for base in node.bases:
            chain = _attribute_chain(base)
            if chain is not None:
                self.base_chains.append(chain)
        #: method name -> function qname
        self.methods: Dict[str, str] = {}
        #: ``self.<attr>`` -> class qname (from ``self.x = Cls(...)`` in
        #: ``__init__`` and from class-body / ``__init__`` annotations).
        self.attr_types: Dict[str, str] = {}


class ModuleInfo:
    """One parsed module's symbol table."""

    def __init__(self, name: str, ctx: FileContext):
        self.name = name
        self.ctx = ctx
        self.path = ctx.rel_path
        #: local name -> function qname (module level defs only)
        self.functions: Dict[str, str] = {}
        #: local name -> class qname
        self.classes: Dict[str, str] = {}
        #: module-level variable name -> binding line
        self.variables: Dict[str, int] = {}
        #: module-level names bound to mutable containers
        self.mutable_vars: Set[str] = set()
        #: local name -> (base_module, original_name or None).
        #: ``None`` original means the binding IS the module ``base``.
        self.import_bindings: Dict[str, Tuple[str, Optional[str]]] = {}
        #: ``__all__`` entries as ``(name, lineno)`` when statically a
        #: list/tuple of string constants.
        self.exports: List[Tuple[str, int]] = []


class ProjectModel:
    """The whole-program view assembled from every parsed file."""

    def __init__(
        self,
        contexts: Sequence[FileContext],
        root: Optional[Path] = None,
        profiles: Optional[Dict[str, Profile]] = None,
    ):
        self.root = Path(root) if root is not None else Path.cwd()
        self.profiles = profiles
        self.contexts: Dict[str, FileContext] = {}
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> project modules it imports (the import graph).
        self.import_graph: Dict[str, Set[str]] = {}
        for ctx in contexts:
            self._index_file(ctx)
        self._link_imports()
        for info in self.functions.values():
            self._link_calls(info)

    # ------------------------------------------------------------------
    # Pass 2a: per-file indexing
    # ------------------------------------------------------------------
    def module_name_for(self, ctx: FileContext) -> str:
        """``repro.*`` dotted name, or a path-derived pseudo-module for
        files outside the package (tests, benchmarks, examples)."""
        if ctx.module:
            return ctx.module
        rel = ctx.rel_path
        if rel.endswith(".py"):
            rel = rel[: -len(".py")]
        parts = [p for p in rel.replace("\\", "/").split("/") if p]
        if parts and parts[-1] == "__init__":
            parts.pop()
        return ".".join(parts) or "<anonymous>"

    def _index_file(self, ctx: FileContext) -> None:
        name = self.module_name_for(ctx)
        info = ModuleInfo(name, ctx)
        self.contexts[ctx.rel_path] = ctx
        self.modules[name] = info
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{name}.{node.name}"
                info.functions[node.name] = qname
                self.functions[qname] = FunctionInfo(
                    qname, name, ctx.rel_path, node
                )
            elif isinstance(node, ast.ClassDef):
                self._index_class(info, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._index_variable(info, target.id, node)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self._index_variable(info, node.target.id, node)
        self._index_module_imports(info)

    def _index_variable(self, info: ModuleInfo, name: str, node: ast.stmt) -> None:
        info.variables[name] = node.lineno
        value = getattr(node, "value", None)
        if name == "__all__":
            if isinstance(value, (ast.List, ast.Tuple)):
                info.exports = [
                    (elt.value, elt.lineno)
                    for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                ]
            return
        if value is not None and _is_mutable_binding(value):
            info.mutable_vars.add(name)

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{info.name}.{node.name}"
        cls = ClassInfo(qname, info.name, info.ctx.rel_path, node)
        info.classes[node.name] = qname
        self.classes[qname] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qname = f"{qname}.{stmt.name}"
                cls.methods[stmt.name] = method_qname
                self.functions[method_qname] = FunctionInfo(
                    method_qname, info.name, info.ctx.rel_path, stmt,
                    class_qname=qname,
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                chain = _attribute_chain(stmt.annotation) \
                    if stmt.annotation is not None else None
                if chain:
                    cls.attr_types[stmt.target.id] = ".".join(chain)

    def _index_module_imports(self, info: ModuleInfo) -> None:
        """Absolutized import bindings — unlike ``FileContext``'s table
        this resolves *relative* imports, which is what package
        ``__init__`` re-exports are written with."""
        ctx = info.ctx
        module_parts = info.name.split(".")
        is_package = ctx.path.name == "__init__.py"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.import_bindings[alias.asname] = (alias.name, None)
                    else:
                        top = alias.name.split(".")[0]
                        info.import_bindings[top] = (top, None)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module
                else:
                    climb = node.level - 1 if is_package else node.level
                    if climb > len(module_parts):
                        continue
                    kept = module_parts[: len(module_parts) - climb] \
                        if climb else module_parts
                    if not kept:
                        continue
                    base = ".".join(kept)
                    if node.module:
                        base = f"{base}.{node.module}"
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.import_bindings[bound] = (base, alias.name)

    def _link_imports(self) -> None:
        for name, info in self.modules.items():
            deps: Set[str] = set()
            for base, _ in info.import_bindings.values():
                top = self._project_module_prefix(base)
                if top is not None:
                    deps.add(top)
            deps.discard(name)
            self.import_graph[name] = deps

    def _project_module_prefix(self, dotted: str) -> Optional[str]:
        """Longest prefix of ``dotted`` that names a scanned module."""
        parts = dotted.split(".")
        for depth in range(len(parts), 0, -1):
            candidate = ".".join(parts[:depth])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def resolve_local(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str]]:
        """Resolve one local name in ``module`` to ``(kind, qname)``,
        chasing re-export chains through package ``__init__`` files."""
        info = self.modules.get(module)
        if info is None:
            return None
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None  # import cycle in a re-export chain
        seen.add((module, name))
        if name in info.functions:
            return (KIND_FUNCTION, info.functions[name])
        if name in info.classes:
            return (KIND_CLASS, info.classes[name])
        if name in info.import_bindings:
            base, original = info.import_bindings[name]
            if original is None:
                if base in self.modules:
                    return (KIND_MODULE, base)
                return (KIND_EXTERNAL, base)
            if base in self.modules:
                resolved = self.resolve_local(base, original, seen)
                if resolved is not None:
                    return resolved
                submodule = f"{base}.{original}"
                if submodule in self.modules:
                    return (KIND_MODULE, submodule)
                return None  # project module, but the symbol is dynamic
            return (KIND_EXTERNAL, f"{base}.{original}")
        if name in info.variables:
            return (KIND_VAR, f"{module}.{name}")
        return None

    def resolve_dotted(
        self, module: str, parts: Sequence[str]
    ) -> Optional[Tuple[str, str]]:
        """Resolve a dotted chain (``mod.Cls.method``) from ``module``."""
        if not parts:
            return None
        current = self.resolve_local(module, parts[0])
        if current is None:
            return None
        for part in parts[1:]:
            kind, target = current
            if kind == KIND_MODULE:
                nxt = self.resolve_local(target, part)
                if nxt is None:
                    submodule = f"{target}.{part}"
                    if submodule in self.modules:
                        nxt = (KIND_MODULE, submodule)
                    else:
                        return None
                current = nxt
            elif kind == KIND_CLASS:
                method = self.lookup_method(target, part)
                if method is None:
                    return None
                current = (KIND_FUNCTION, method)
            elif kind == KIND_EXTERNAL:
                current = (KIND_EXTERNAL, f"{target}.{part}")
            else:
                return None
        return current

    def resolve_annotation(
        self, module: str, annotation: Optional[ast.AST]
    ) -> Optional[str]:
        """Class qname named by an annotation (handles string forms)."""
        if annotation is None:
            return None
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            parts = node.value.split("[", 1)[0].strip().split(".")
            parts = [p for p in (part.strip() for part in parts) if p]
        else:
            chain = _attribute_chain(node)
            if chain is None:
                return None
            parts = chain
        resolved = self.resolve_dotted(module, parts)
        if resolved is None and len(parts) == 1:
            # A bare string annotation may name a class in this module
            # without a local binding (forward reference) — already
            # covered — or fail entirely; give up quietly.
            return None
        if resolved is not None and resolved[0] == KIND_CLASS:
            return resolved[1]
        return None

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def base_qnames(self, class_qname: str) -> List[str]:
        cls = self.classes.get(class_qname)
        if cls is None:
            return []
        resolved: List[str] = []
        for chain in cls.base_chains:
            base = self.resolve_dotted(cls.module, chain)
            if base is not None and base[0] == KIND_CLASS:
                resolved.append(base[1])
        return resolved

    def is_subclass_of(self, class_qname: str, base_qname: str) -> bool:
        if class_qname == base_qname:
            return True
        stack = [class_qname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for base in self.base_qnames(current):
                if base == base_qname:
                    return True
                stack.append(base)
        return False

    def subclasses_of(self, base_qnames: Iterable[str]) -> Set[str]:
        """Every project class transitively deriving from the bases
        (the bases themselves included when they exist in the model)."""
        bases = set(base_qnames)
        result = {q for q in bases if q in self.classes}
        changed = True
        while changed:
            changed = False
            for qname in self.classes:
                if qname in result:
                    continue
                if any(
                    b in result or b in bases
                    for b in self.base_qnames(qname)
                ):
                    result.add(qname)
                    changed = True
        return result

    def lookup_method(self, class_qname: str, name: str) -> Optional[str]:
        """Method qname on the class or its nearest ancestor."""
        stack = [class_qname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(self.base_qnames(current))
        return None

    def attr_type(self, class_qname: str, attr: str) -> Optional[str]:
        """Class qname of ``self.<attr>``, walking the base chain."""
        stack = [class_qname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            dotted = cls.attr_types.get(attr)
            if dotted is not None:
                # ``_harvest_attr_types`` stores fully-resolved qnames;
                # class-body annotations store local dotted chains.
                if dotted in self.classes:
                    return dotted
                resolved = self.resolve_dotted(cls.module, dotted.split("."))
                if resolved is not None and resolved[0] == KIND_CLASS:
                    return resolved[1]
                return None
            stack.extend(self.base_qnames(current))
        return None

    # ------------------------------------------------------------------
    # Pass 2b: call-graph linking
    # ------------------------------------------------------------------
    def _link_calls(self, fn: FunctionInfo) -> None:
        if fn.class_qname is not None and fn.name == "__init__":
            self._harvest_attr_types(fn)
        local_types = self.local_types(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(fn, node, local_types)
            if resolved is None:
                continue
            kind, target = resolved
            if kind == KIND_EXTERNAL:
                fn.external_calls.append((target, node))
            elif kind == KIND_FUNCTION:
                fn.project_calls.append((target, node))
            elif kind == KIND_CLASS:
                init = self.lookup_method(target, "__init__")
                if init is not None:
                    fn.project_calls.append((init, node))

    def _harvest_attr_types(self, init_fn: FunctionInfo) -> None:
        """``self.x = ClassName(...)`` in ``__init__`` wires components;
        record the attr's class so ``self.x.method()`` calls resolve."""
        cls = self.classes[init_fn.class_qname]
        for node in ast.walk(init_fn.node):
            value_cls: Optional[str] = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
                ann = self.resolve_annotation(cls.module, node.annotation)
                if ann is not None:
                    value_cls = ann
            else:
                continue
            if value_cls is None and isinstance(value, ast.Call):
                chain = _attribute_chain(value.func)
                if chain:
                    resolved = self.resolve_dotted(cls.module, chain)
                    if resolved is not None and resolved[0] == KIND_CLASS:
                        value_cls = resolved[1]
            if value_cls is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in cls.attr_types
                ):
                    cls.attr_types[target.attr] = value_cls

    def local_types(self, fn: "FunctionInfo") -> Dict[str, str]:
        """Names in the function known to hold project-class instances:
        annotated parameters and ``x = ClassName(...)`` locals."""
        types: Dict[str, str] = {}
        args = getattr(fn.node, "args", None)
        if args is not None:
            every = (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
            for arg in every:
                resolved = self.resolve_annotation(fn.module, arg.annotation)
                if resolved is not None:
                    types[arg.arg] = resolved
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                chain = _attribute_chain(node.value.func)
                if not chain:
                    continue
                resolved = self.resolve_dotted(fn.module, chain)
                if resolved is None or resolved[0] != KIND_CLASS:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = resolved[1]
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Name
            ):
                # Alias of an already-typed name (e.g. a parameter).
                source = types.get(node.value.id)
                if source is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = source
        return types

    def _resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, str],
    ) -> Optional[Tuple[str, str]]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in local_types:
                return None  # calling an instance — not resolvable
            return self.resolve_local(fn.module, func.id)
        chain = _attribute_chain(func)
        if chain is None:
            return None
        root = chain[0]
        if root == "self" and fn.class_qname is not None:
            if len(chain) == 2:
                method = self.lookup_method(fn.class_qname, chain[1])
                return (KIND_FUNCTION, method) if method else None
            if len(chain) == 3:
                attr_cls = self.attr_type(fn.class_qname, chain[1])
                if attr_cls is None:
                    return None
                method = self.lookup_method(attr_cls, chain[2])
                return (KIND_FUNCTION, method) if method else None
            return None
        if root in local_types and len(chain) == 2:
            method = self.lookup_method(local_types[root], chain[1])
            return (KIND_FUNCTION, method) if method else None
        return self.resolve_dotted(fn.module, chain)

    # ------------------------------------------------------------------
    # Conveniences for rules
    # ------------------------------------------------------------------
    def profile_for(self, rel_path: str) -> Profile:
        return profile_for(rel_path, self.profiles)

    def callees(self, qname: str) -> List[Tuple[str, ast.Call]]:
        fn = self.functions.get(qname)
        return list(fn.project_calls) if fn is not None else []

    def reachable_from(self, entries: Iterable[str], max_depth: int = 8) -> Set[str]:
        """Function qnames reachable from the entry points via the
        project call graph (entries included when they exist)."""
        frontier = [q for q in entries if q in self.functions]
        seen: Set[str] = set(frontier)
        for _ in range(max_depth):
            nxt: List[str] = []
            for qname in frontier:
                for callee, _node in self.callees(qname):
                    if callee not in seen and callee in self.functions:
                        seen.add(callee)
                        nxt.append(callee)
            if not nxt:
                break
            frontier = nxt
        return seen

    def source_line(self, rel_path: str, lineno: int) -> str:
        ctx = self.contexts.get(rel_path)
        return ctx.source_line(lineno) if ctx is not None else ""
