"""Determinism rules.

Every figure in the reproduction and the chaos harness's
same-seed-same-run guarantee depend on one property: a simulation run
is a pure function of its seed. Three rules guard it.

``no-ambient-entropy``
    No interpreter-global RNG, wall clock, or OS entropy in simulation
    code. Randomness flows from a seeded ``random.Random`` (usually the
    simulator's ``rng``), time from the simulator's virtual ``now``.

``no-unsorted-iteration``
    Iterating a ``set`` observes hash order, which varies across
    processes (``PYTHONHASHSEED``) and with object identity. When loop
    order feeds the event scheduler, packet emission, or serialization,
    that is silent nondeterminism. Order-sensitive iteration over sets
    (``for`` loops, ``list``/``tuple`` conversions, list/dict
    comprehensions, ``join``) must go through ``sorted(...)``;
    order-insensitive folds (``sum``, ``len``, ``any``, set algebra)
    remain free.

``no-float-time-eq``
    Simulated time is a float accumulated by addition; exact equality
    (``t == deadline``) silently breaks when a refresh interval or
    delay changes representation. Compare with inequalities or an
    explicit tolerance.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..engine import FileContext, Finding
from . import Rule, register

# ----------------------------------------------------------------------
# no-ambient-entropy
# ----------------------------------------------------------------------

#: random-module attributes that construct independent RNG instances.
ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

#: Wall-clock reads (banned unless the profile sanctions host timing).
#: ``time.perf_counter`` stays allowed everywhere: figure-12 style
#: experiments measure real host CPU cost, which is a measurement of
#: the host, not simulated behavior.
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: OS entropy sources that bypass the seed entirely.
OS_ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})


@register
class AmbientEntropyRule(Rule):
    id = "no-ambient-entropy"
    summary = (
        "simulation code must draw randomness from a seeded "
        "random.Random and time from the simulator's virtual clock"
    )
    default_options = {"allow_wall_clock": False}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allow_wall_clock = bool(self.options["allow_wall_clock"])
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve_name(node.func)
            if origin is None:
                continue
            parts = origin.split(".")
            if parts[0] == "random" and len(parts) == 2 and \
                    parts[1] not in ALLOWED_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"{origin}() uses the interpreter-global RNG; draw "
                    "from a seeded random.Random (e.g. sim.rng) instead",
                )
            elif origin in OS_ENTROPY or parts[0] == "secrets":
                yield self.finding(
                    ctx,
                    node,
                    f"{origin}() reads OS entropy, which no seed can "
                    "reproduce; derive ids/bytes from a seeded "
                    "random.Random",
                )
            elif origin in WALL_CLOCK and not allow_wall_clock:
                yield self.finding(
                    ctx,
                    node,
                    f"{origin}() reads the wall clock; use the "
                    "simulator's virtual now (perf_counter is allowed "
                    "for host-CPU measurements)",
                )


# ----------------------------------------------------------------------
# no-unsorted-iteration
# ----------------------------------------------------------------------

#: Annotation heads that mark a name as set-typed.
SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)

#: Methods on a set that produce another set.
SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtins that materialize iteration order into a sequence.
ORDER_SENSITIVE_CONVERTERS = frozenset({"list", "tuple"})

#: Dict-view methods (only checked when ``flag_dict_views`` is on).
DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in SET_ANNOTATIONS
    if isinstance(head, ast.Name):
        return head.id in SET_ANNOTATIONS
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        # String annotation, e.g. ``"Set[NameRecord]"``.
        stripped = head.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
        return stripped in SET_ANNOTATIONS
    return False


class _SetTracker:
    """File-local inference of which expressions are sets.

    Purely syntactic and intraprocedural: set literals/comprehensions,
    ``set()``/``frozenset()`` calls, set algebra, set-producing methods,
    names assigned or annotated as sets in the enclosing scope, and
    attributes a class in this file declares as sets.
    """

    def __init__(self, ctx: FileContext):
        self.set_attrs: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign) and \
                    _annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Attribute):
                    self.set_attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign):
                if self._is_set_literalish(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            self.set_attrs.add(target.attr)

    @staticmethod
    def _is_set_literalish(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )

    def scope_sets(self, scope: ast.AST) -> Set[str]:
        """Names bound to sets within one function/module scope."""
        names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if _annotation_is_set(arg.annotation):
                    names.add(arg.arg)
        # Two passes so ``a = set(); b = a | other`` resolves ``b``.
        for _ in range(2):
            for node in _scope_nodes(scope):
                if isinstance(node, ast.Assign) and \
                        self.is_set_expr(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name) and \
                        _annotation_is_set(node.annotation):
                    names.add(node.target.id)
                elif isinstance(node, ast.AugAssign) and \
                        isinstance(node.target, ast.Name) and \
                        self.is_set_expr(node.value, names):
                    names.add(node.target.id)
        return names

    def is_set_expr(self, node: ast.AST, scope_sets: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in scope_sets
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left, scope_sets) or \
                self.is_set_expr(node.right, scope_sets)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and \
                    func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and \
                    func.attr in SET_PRODUCING_METHODS:
                return self.is_set_expr(func.value, scope_sets)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body, scope_sets) or \
                self.is_set_expr(node.orelse, scope_sets)
        return False


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope's statements without entering nested scopes."""
    body = scope.body if hasattr(scope, "body") else []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class UnsortedIterationRule(Rule):
    id = "no-unsorted-iteration"
    summary = (
        "order-sensitive iteration over a set observes hash order; "
        "wrap the iterable in sorted(...)"
    )
    default_options = {"flag_dict_views": False}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tracker = _SetTracker(ctx)
        flag_dict_views = bool(self.options["flag_dict_views"])
        for scope in _scopes(ctx.tree):
            scope_sets = tracker.scope_sets(scope)
            for node in _scope_nodes(scope):
                yield from self._check_node(
                    ctx, tracker, scope_sets, node, flag_dict_views
                )

    def _check_node(
        self,
        ctx: FileContext,
        tracker: _SetTracker,
        scope_sets: Set[str],
        node: ast.AST,
        flag_dict_views: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if tracker.is_set_expr(node.iter, scope_sets):
                yield self.finding(
                    ctx,
                    node.iter,
                    "for-loop over a set observes hash order (varies "
                    "with PYTHONHASHSEED/object identity); iterate "
                    "sorted(...) so scheduling and emission order are "
                    "reproducible",
                )
            elif flag_dict_views and self._is_dict_view(node.iter):
                yield self.finding(
                    ctx,
                    node.iter,
                    "for-loop over a dict view; this profile requires "
                    "sorted(...) iteration",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for generator in node.generators:
                if tracker.is_set_expr(generator.iter, scope_sets):
                    yield self.finding(
                        ctx,
                        generator.iter,
                        "comprehension builds an ordered result from a "
                        "set's hash order; iterate sorted(...)",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            converter = None
            if isinstance(func, ast.Name) and \
                    func.id in ORDER_SENSITIVE_CONVERTERS:
                converter = func.id
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                converter = "join"
            if converter and node.args and \
                    tracker.is_set_expr(node.args[0], scope_sets):
                yield self.finding(
                    ctx,
                    node,
                    f"{converter}(...) materializes a set's hash order "
                    "into a sequence; use sorted(...) instead",
                )

    @staticmethod
    def _is_dict_view(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DICT_VIEW_METHODS
            and not node.args
        )


# ----------------------------------------------------------------------
# no-float-time-eq
# ----------------------------------------------------------------------

#: Identifier tokens that mark an expression as simulated time.
TIME_TOKENS = frozenset(
    {"now", "time", "deadline", "expiry", "expires", "expire", "timestamp",
     "clock"}
)

_TOKEN_SPLIT = re.compile(r"[^a-z0-9]+")


def _tokens(identifier: str) -> Set[str]:
    return {tok for tok in _TOKEN_SPLIT.split(identifier.lower()) if tok}


def _time_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(_tokens(node.id) & TIME_TOKENS)
    if isinstance(node, ast.Attribute):
        return bool(_tokens(node.attr) & TIME_TOKENS) or \
            _time_like(node.value)
    if isinstance(node, ast.Call):
        return _time_like(node.func)
    if isinstance(node, ast.BinOp):
        return _time_like(node.left) or _time_like(node.right)
    return False


#: Call targets that make an equality comparison tolerance-based or
#: that construct exact sentinels.
_TOLERANCE_CALLS = frozenset({"approx", "isclose"})


def _exempt_operand(node: ast.AST) -> bool:
    """Operands whose equality comparison is exact or tolerance-based.

    ``x == pytest.approx(y)`` and ``math.isclose`` are the sanctioned
    fixes; ``math.inf`` / ``float("inf")`` sentinels compare exactly by
    IEEE-754 construction; None/str/bool and container literals are not
    float comparisons at all.
    """
    if isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    ):
        return True
    if isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.Name, ast.Attribute)):
        terminal = node.id if isinstance(node, ast.Name) else node.attr
        if terminal in {"inf", "nan"}:
            return True
    if isinstance(node, ast.Call):
        func = node.func
        terminal = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if terminal in _TOLERANCE_CALLS:
            return True
        if terminal == "float" and node.args and isinstance(
            node.args[0], ast.Constant
        ) and str(node.args[0].value).lstrip("+-") in {"inf", "infinity"}:
            return True
    return False


@register
class FloatTimeEqRule(Rule):
    id = "no-float-time-eq"
    summary = (
        "exact == / != on simulated time is brittle float equality; "
        "compare with inequalities or a tolerance"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(_exempt_operand(operand) for operand in operands):
                continue
            if any(_time_like(operand) for operand in operands):
                yield self.finding(
                    ctx,
                    node,
                    "exact equality on simulated time breaks when a "
                    "delay or interval changes float representation; "
                    "use <=/>= bounds or an explicit tolerance",
                )
