"""Pluggable rule pack: base class, registry, and rule construction.

A rule is one AST visitor over a :class:`~repro.lint.engine.FileContext`
with an id (used in pragmas, baselines, and reports), a severity, and
optional per-profile options. New rules register themselves with
:func:`register`; the engine instantiates the pack per profile so the
same rule can run with different options in different directories.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Type

from ..engine import SEVERITY_ERROR, SEVERITY_WARNING, FileContext, Finding

#: rule id -> rule class, populated by :func:`register`.
REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    REGISTRY[cls.id] = cls
    return cls


class Rule:
    """Base class for one static-analysis rule."""

    #: Stable identifier used in pragmas, baselines, and reports.
    id: str = ""
    severity: str = SEVERITY_ERROR
    #: One-line summary shown by ``--list-rules``.
    summary: str = ""
    #: Option defaults, overridable per profile.
    default_options: Mapping[str, object] = {}

    def __init__(self, options: Optional[Mapping[str, object]] = None):
        merged = dict(self.default_options)
        for key, value in (options or {}).items():
            if key not in merged:
                raise ValueError(
                    f"rule {self.id!r} has no option {key!r} "
                    f"(known: {sorted(merged)})"
                )
            merged[key] = value
        self.options = merged

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # Helper used by every concrete rule.
    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            path=ctx.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
            source=ctx.source_line(line),
        )


def create_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    rule_options: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[Rule]:
    """Instantiate the registered pack, honoring select/ignore/options."""
    chosen = set(select) if select is not None else set(REGISTRY)
    chosen -= set(ignore or ())
    unknown = chosen - set(REGISTRY)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")
    options = rule_options or {}
    return [
        REGISTRY[rule_id](options.get(rule_id))
        for rule_id in sorted(chosen)
    ]


# Importing the rule modules populates REGISTRY as a side effect.
from . import determinism as _determinism  # noqa: E402,F401
from . import hygiene as _hygiene  # noqa: E402,F401
from . import layering as _layering  # noqa: E402,F401

__all__ = [
    "REGISTRY",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "create_rules",
    "register",
]
