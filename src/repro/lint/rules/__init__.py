"""Pluggable rule pack: base classes, registry, and rule construction.

Rules come in two scopes. A **per-file** rule (:class:`Rule`) is one
AST visitor over a :class:`~repro.lint.engine.FileContext`; the engine
instantiates the pack per profile so the same rule can run with
different options in different directories. A **project** rule
(:class:`ProjectRule`) runs once, after every file has parsed, over the
:class:`~repro.lint.project.ProjectModel` — that is where cross-file
properties (taint reachability, protocol-surface exhaustiveness, node
isolation) live. Both share the id/severity/pragma/baseline machinery.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional, Type,
)

from ..engine import SEVERITY_ERROR, SEVERITY_WARNING, FileContext, Finding

if TYPE_CHECKING:
    from ..project import ProjectModel

#: rule id -> rule class, populated by :func:`register`.
REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    REGISTRY[cls.id] = cls
    return cls


class Rule:
    """Base class for one static-analysis rule."""

    #: Stable identifier used in pragmas, baselines, and reports.
    id: str = ""
    severity: str = SEVERITY_ERROR
    #: One-line summary shown by ``--list-rules``.
    summary: str = ""
    #: Option defaults, overridable per profile.
    default_options: Mapping[str, object] = {}

    def __init__(self, options: Optional[Mapping[str, object]] = None):
        merged = dict(self.default_options)
        for key, value in (options or {}).items():
            if key not in merged:
                raise ValueError(
                    f"rule {self.id!r} has no option {key!r} "
                    f"(known: {sorted(merged)})"
                )
            merged[key] = value
        self.options = merged

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # Helper used by every concrete rule.
    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            path=ctx.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
            source=ctx.source_line(line),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (pass 2).

    ``check`` is a no-op — project rules never see individual files;
    the engine calls :meth:`check_project` exactly once per run with
    the assembled model. Findings anchor to real (path, line) spots so
    pragmas and the baseline apply exactly as for per-file rules.
    """

    #: Marks the rule for the engine's pass-2 scheduling and for
    #: ``--list-rules``.
    scope = "project"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, model: "ProjectModel") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        model: "ProjectModel",
        path: str,
        line: int,
        message: str,
        col: int = 0,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.severity,
            source=model.source_line(path, line),
        )


def create_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    rule_options: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[Rule]:
    """Instantiate the registered pack, honoring select/ignore/options."""
    chosen = set(select) if select is not None else set(REGISTRY)
    chosen -= set(ignore or ())
    unknown = chosen - set(REGISTRY)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")
    options = rule_options or {}
    return [
        REGISTRY[rule_id](options.get(rule_id))
        for rule_id in sorted(chosen)
    ]


# Importing the rule modules populates REGISTRY as a side effect.
from . import determinism as _determinism  # noqa: E402,F401
from . import flow as _flow  # noqa: E402,F401
from . import hygiene as _hygiene  # noqa: E402,F401
from . import layering as _layering  # noqa: E402,F401
from . import protocol as _protocol  # noqa: E402,F401

__all__ = [
    "REGISTRY",
    "ProjectRule",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "create_rules",
    "register",
]
