"""Layering rule: the declared module DAG, enforced.

The system is layered the way the paper's architecture is: names
(``naming``) are stored in name-trees (``nametree``), carried in
packets (``message``) across the simulated network (``netsim``),
resolved and routed by INRs (``resolver``), which self-organize via the
DSR overlay (``overlay``); clients, the chaos harness, and the
experiments sit on top. An import against that direction couples a
lower layer to a higher one — the kind of cycle that made the
``resolver``/``overlay`` split leak until the DSR wire messages moved
down into ``message``.

Each subpackage declares the exact set of subpackages it may import.
Importing an undeclared (new) layer is a warning — add the layer to the
DAG deliberately — while importing against the declared direction is an
error.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..engine import SEVERITY_WARNING, FileContext, Finding
from . import Rule, register

#: The declared DAG: subpackage -> subpackages it may import.
#: Order below mirrors the layering, bottom to top.
LAYER_DAG: Dict[str, FrozenSet[str]] = {
    "naming": frozenset(),
    "netsim": frozenset(),
    "analysis": frozenset(),
    "lint": frozenset(),
    #: Observability sits at the bottom, beside naming/netsim: it
    #: imports nothing from the system so every layer above may record
    #: spans and metrics into it (message carries its TraceContext).
    "obs": frozenset(),
    "nametree": frozenset({"naming"}),
    "message": frozenset({"naming", "obs"}),
    #: Disruption tolerance: the custody store sits beside nametree so
    #: the resolver can embed one; its wire form lives in message.
    "dtn": frozenset({"naming", "message", "obs"}),
    "resolver": frozenset(
        {"naming", "nametree", "message", "netsim", "dtn", "obs"}
    ),
    "overlay": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "obs"}
    ),
    "client": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "obs"}
    ),
    "baselines": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "client", "obs"}
    ),
    "apps": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "client", "obs"}
    ),
    "experiments": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "client", "apps", "baselines", "analysis", "obs"}
    ),
    "chaos": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "client", "experiments", "dtn", "obs"}
    ),
    "tools": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "client", "experiments", "obs"}
    ),
    #: The experiment engine orchestrates everything below it — it maps
    #: toggles onto experiment/chaos knobs and folds their reports —
    #: and nothing imports it back.
    "xp": frozenset(
        {"naming", "nametree", "message", "netsim", "resolver", "overlay",
         "client", "apps", "baselines", "analysis", "experiments", "chaos",
         "dtn", "obs"}
    ),
}


@register
class LayeringRule(Rule):
    id = "layering"
    summary = (
        "imports must follow the declared layer DAG "
        "(naming/obs -> nametree/message/dtn -> netsim -> resolver "
        "-> overlay -> client -> apps/baselines -> experiments "
        "-> chaos/tools)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        own = ctx.package
        if own is None:
            # Outside ``repro`` (tests, benchmarks) or a root facade
            # module (``repro/__init__``, ``repro/__main__``) that sits
            # above every layer by design.
            return
        for node, target in self._repro_imports(ctx):
            yield from self._evaluate(ctx, own, node, target)

    # ------------------------------------------------------------------
    # Import extraction
    # ------------------------------------------------------------------
    def _repro_imports(
        self, ctx: FileContext
    ) -> Iterator[Tuple[ast.AST, List[str]]]:
        """Yield ``(node, dotted_parts)`` for every intra-repro import."""
        module_parts = (ctx.module or "").split(".")
        is_package = ctx.path.name == "__init__.py"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if parts[0] == "repro":
                        yield node, parts
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    if node.module and \
                            node.module.split(".")[0] == "repro":
                        yield node, node.module.split(".")
                    continue
                # Relative import: climb ``level`` packages from here.
                climb = node.level - 1 if is_package else node.level
                if climb >= len(module_parts):
                    continue
                base = module_parts[: len(module_parts) - climb]
                if base[0] != "repro":
                    continue
                if node.module:
                    yield node, base + node.module.split(".")
                else:
                    # ``from .. import client`` names the subpackages
                    # directly.
                    for alias in node.names:
                        yield node, base + [alias.name]

    # ------------------------------------------------------------------
    # DAG evaluation
    # ------------------------------------------------------------------
    def _evaluate(
        self, ctx: FileContext, own: str, node: ast.AST, target: List[str]
    ) -> Iterator[Finding]:
        if len(target) < 2:
            yield self.finding(
                ctx,
                node,
                f"{own} imports the repro package root, which re-exports "
                "every layer; import the specific subpackage instead",
            )
            return
        dependency = target[1]
        if dependency == own:
            return
        allowed = LAYER_DAG.get(own)
        if allowed is None:
            yield self.finding(
                ctx,
                node,
                f"module is in undeclared layer {own!r}; add it to the "
                "layer DAG (repro.lint.rules.layering.LAYER_DAG)",
                severity=SEVERITY_WARNING,
            )
            return
        if dependency not in LAYER_DAG:
            yield self.finding(
                ctx,
                node,
                f"{own} imports undeclared layer {dependency!r}; add it "
                "to the layer DAG deliberately before depending on it",
                severity=SEVERITY_WARNING,
            )
        elif dependency not in allowed:
            declared = ", ".join(sorted(allowed)) or "nothing"
            yield self.finding(
                ctx,
                node,
                f"{own} may not import {dependency} (declared deps: "
                f"{declared}); move shared code below both layers or "
                "invert the dependency",
            )
