"""Cross-file flow rules: entropy taint and node isolation.

``entropy-taint``
    The per-file ``no-ambient-entropy`` rule only sees *direct* calls;
    a wrapper around ``time.time()`` in one module laundered through an
    intermediate helper is invisible to it. This rule propagates
    ambient-entropy taint over the project call graph and flags every
    call site that *reaches* a source, judged by the **caller's**
    profile — which turns the wall-clock-forbidden profile pins for
    ``obs``/``dtn``/``delegation`` into reachability guarantees. A
    pragma at the source suppresses only the direct finding (the source
    module may legitimately read the host clock); it does not sanction
    callers in stricter profiles, so taint flows through it.

``node-isolation``
    The simulator's race-detector analog. Simulated nodes must interact
    only through the message plane (netsim ``send``); a node method
    that writes attributes through another node's process reference, or
    that mutates module-level shared state, is cross-node coupling no
    seed controls — the same bug class a data race is in a real
    distributed system. Reads stay free (experiments and invariants
    inspect state liberally); *writes* are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Finding
from ..project import ProjectModel, _attribute_chain
from . import ProjectRule, register
from .determinism import ALLOWED_RANDOM, OS_ENTROPY, WALL_CLOCK

# ----------------------------------------------------------------------
# entropy-taint
# ----------------------------------------------------------------------

TAINT_RNG = "ambient-rng"
TAINT_OS_ENTROPY = "os-entropy"
TAINT_WALL_CLOCK = "wall-clock"


def classify_entropy_origin(origin: str) -> Optional[str]:
    """Taint kind of one external call origin, or None when clean.

    Mirrors the per-file rule's source sets so the two rules can never
    disagree about what counts as ambient entropy.
    """
    parts = origin.split(".")
    if parts[0] == "random" and len(parts) == 2 and \
            parts[1] not in ALLOWED_RANDOM:
        return TAINT_RNG
    if origin in OS_ENTROPY or parts[0] == "secrets":
        return TAINT_OS_ENTROPY
    if origin in WALL_CLOCK:
        return TAINT_WALL_CLOCK
    return None


@register
class EntropyTaintRule(ProjectRule):
    id = "entropy-taint"
    summary = (
        "no call path from simulation code may reach ambient entropy "
        "(wall clock, unseeded RNG, OS entropy), even through helpers "
        "in other modules"
    )
    #: Chains longer than this are reported truncated (they still flag).
    default_options = {"max_chain_display": 6}

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        taint = self._propagate(model)
        for fn in model.functions.values():
            profile = model.profile_for(fn.path)
            if self.id in profile.disable:
                continue
            entropy_options = profile.rule_options.get(
                "no-ambient-entropy", {}
            )
            sanctioned = frozenset(
                {TAINT_WALL_CLOCK}
                if entropy_options.get("allow_wall_clock", False)
                else ()
            )
            for callee, call in fn.project_calls:
                for kind, chain in sorted(taint.get(callee, {}).items()):
                    if kind in sanctioned:
                        continue
                    yield self._taint_finding(
                        model, fn.path, call, kind, (callee,) + chain
                    )

    # ------------------------------------------------------------------
    def _propagate(
        self, model: ProjectModel
    ) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Fixed point of taint over the call graph.

        ``taint[qname][kind]`` is the shortest known chain from that
        function to a source: ``(callee, ..., origin)``. Direct sources
        seed the map; each iteration extends callers until stable.
        """
        taint: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        for qname, fn in model.functions.items():
            for origin, _call in fn.external_calls:
                kind = classify_entropy_origin(origin)
                if kind is None:
                    continue
                chains = taint.setdefault(qname, {})
                if kind not in chains or len(chains[kind]) > 1:
                    chains[kind] = (f"{origin}()",)
        changed = True
        iterations = 0
        limit = max(4, len(model.functions))
        while changed and iterations < limit:
            changed = False
            iterations += 1
            for qname, fn in model.functions.items():
                chains = taint.setdefault(qname, {})
                for callee, _call in fn.project_calls:
                    if callee == qname:
                        continue
                    for kind, chain in taint.get(callee, {}).items():
                        candidate = (callee,) + chain
                        if kind not in chains or \
                                len(candidate) < len(chains[kind]):
                            chains[kind] = candidate
                            changed = True
        return {q: c for q, c in taint.items() if c}

    def _taint_finding(
        self,
        model: ProjectModel,
        path: str,
        call: ast.Call,
        kind: str,
        chain: Tuple[str, ...],
    ) -> Finding:
        limit = int(self.options["max_chain_display"])
        shown = list(chain[:limit])
        if len(chain) > limit:
            shown.append("...")
        rendered = " -> ".join(shown)
        remedy = {
            TAINT_WALL_CLOCK: "thread the simulator's virtual now instead",
            TAINT_RNG: "thread a seeded random.Random instead",
            TAINT_OS_ENTROPY: "derive bytes/ids from a seeded "
                              "random.Random instead",
        }[kind]
        return self.finding_at(
            model,
            path,
            call.lineno,
            f"call launders {kind} through {rendered}; {remedy} "
            "(the per-file no-ambient-entropy rule cannot see across "
            "files, this reachability check can)",
            col=call.col_offset,
        )


# ----------------------------------------------------------------------
# node-isolation
# ----------------------------------------------------------------------

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {"append", "add", "update", "pop", "remove", "discard", "clear",
     "extend", "insert", "setdefault", "popitem", "appendleft",
     "extendleft"}
)


def _store_roots(target: ast.AST) -> Optional[Tuple[str, List[str]]]:
    """``(root_name, chain)`` when the store target is an attribute or
    subscript chain hanging off a Name; None for plain-name stores.

    Subscripts are transparent: ``registry.LIVE[k] = v`` yields
    ``("registry", ["registry", "LIVE"])``.
    """
    node = target
    attrs: List[str] = []
    saw_deref = False
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        saw_deref = True
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
        node = node.value
    if not saw_deref or not isinstance(node, ast.Name):
        return None
    return node.id, [node.id] + list(reversed(attrs))


def _collect_bound_names(target: ast.AST, names: Set[str]) -> None:
    """Names a store target *binds*. ``x = ...`` binds ``x``;
    ``x[k] = ...`` and ``x.a = ...`` mutate an existing object and bind
    nothing — their roots must NOT be treated as locals."""
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, ast.Starred):
        _collect_bound_names(target.value, names)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _collect_bound_names(elt, names)


def _local_names(fn_node: ast.AST) -> Set[str]:
    """Names bound inside the function (params, assignments, loops,
    withs, comprehensions) — stores through these are local, not global."""
    names: Set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    for node in ast.walk(fn_node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [
                item.optional_vars for item in node.items
                if item.optional_vars is not None
            ]
        elif isinstance(node, ast.comprehension):
            targets = [node.target]
        for target in targets:
            _collect_bound_names(target, names)
    return names


def _global_decls(fn_node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


@register
class NodeIsolationRule(ProjectRule):
    id = "node-isolation"
    summary = (
        "node methods must not write through another node's process "
        "reference or mutate module-level state; nodes communicate "
        "only via netsim send"
    )
    default_options = {
        #: Root process classes; methods of their subclasses are "node
        #: methods". The default is the simulator's process base.
        "process_bases": ("repro.netsim.process.Process",),
    }

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        bases = tuple(self.options["process_bases"])
        process_classes = model.subclasses_of(bases)
        if not process_classes:
            return
        for fn in model.functions.values():
            if fn.class_qname not in process_classes:
                continue
            profile = model.profile_for(fn.path)
            if self.id in profile.disable:
                continue
            yield from self._check_method(model, fn, process_classes)

    # ------------------------------------------------------------------
    def _check_method(self, model, fn, process_classes) -> Iterator[Finding]:
        foreign = self._foreign_process_names(model, fn, process_classes)
        locals_ = _local_names(fn.node)
        globals_ = _global_decls(fn.node)
        module = model.modules.get(fn.module)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target] if getattr(node, "value", True) \
                    else []
            else:
                if isinstance(node, ast.Call):
                    yield from self._check_mutating_call(
                        model, fn, module, node, foreign, locals_
                    )
                continue
            for target in targets:
                yield from self._check_store(
                    model, fn, module, node, target, foreign, locals_,
                    globals_,
                )

    def _foreign_process_names(
        self, model, fn, process_classes
    ) -> Set[str]:
        """Parameter (and aliased-local) names holding *another* node's
        process: annotated as a process class, excluding ``self``."""
        names: Set[str] = set()
        types = model.local_types(fn)
        for name, class_qname in types.items():
            if name == "self":
                continue
            if class_qname in process_classes:
                names.add(name)
        return names

    def _check_store(
        self, model, fn, module, stmt, target, foreign, locals_, globals_
    ) -> Iterator[Finding]:
        rooted = _store_roots(target)
        if rooted is None:
            # Plain-name store: only a declared global is shared state.
            if isinstance(target, ast.Name) and target.id in globals_:
                yield self.finding_at(
                    model, fn.path, stmt.lineno,
                    f"node method rebinds module-level {target.id!r} via "
                    "'global'; keep per-node state on the process object "
                    "so runs stay seed-isolated",
                    col=stmt.col_offset,
                )
            return
        root, chain = rooted
        if root in foreign:
            dotted = ".".join(chain)
            yield self.finding_at(
                model, fn.path, stmt.lineno,
                f"node method writes {dotted} through another node's "
                "process reference; nodes may only communicate via "
                "netsim send (reads are fine, writes are a simulated "
                "data race)",
                col=stmt.col_offset,
            )
            return
        yield from self._flag_global_mutation(
            model, fn, module, stmt, chain, locals_, "stores into"
        )

    def _check_mutating_call(
        self, model, fn, module, call, foreign, locals_
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in MUTATING_METHODS:
            return
        chain = _attribute_chain(func)
        if chain is None:
            return
        root = chain[0]
        if root in foreign:
            dotted = ".".join(chain)
            yield self.finding_at(
                model, fn.path, call.lineno,
                f"node method calls {dotted}() — an in-place mutation "
                "through another node's process reference; send a "
                "message instead",
                col=call.col_offset,
            )
            return
        if len(chain) <= 3:  # G.append() / mod.G.update(); deeper
            yield from self._flag_global_mutation(  # chains are object
                model, fn, module, call, chain[:-1], locals_,  # state
                f"mutates in place via .{func.attr}()",
            )

    def _flag_global_mutation(
        self, model, fn, module, node, chain, locals_, verb
    ) -> Iterator[Finding]:
        root = chain[0]
        if root in locals_ or root == "self" or module is None:
            return
        owner: Optional[str] = None
        name = root
        if root in module.mutable_vars:
            owner = module.name
        else:
            resolved = model.resolve_local(module.name, root)
            if resolved is not None and resolved[0] == "var":
                var_module, var_name = resolved[1].rsplit(".", 1)
                info = model.modules.get(var_module)
                if info is not None and var_name in info.mutable_vars:
                    owner = var_module
                    name = var_name
            elif resolved is not None and resolved[0] == "module" and \
                    len(chain) >= 2:
                # module-attribute form: registry.LIVE_NODES[...] = x
                info = model.modules.get(resolved[1])
                if info is not None and chain[1] in info.mutable_vars:
                    owner = resolved[1]
                    name = chain[1]
        if owner is None:
            return
        yield self.finding_at(
            model, fn.path, node.lineno,
            f"node method {verb} module-level mutable {name!r} "
            f"(defined in {owner}); module globals are shared across "
            "every node and every run — keep the state on the process "
            "or pass it through the simulator",
            col=node.col_offset,
        )
