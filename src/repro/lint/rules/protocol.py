"""Protocol-surface exhaustiveness: wire messages, drop causes, docs.

The protocol has three surfaces that must not drift apart:

1. **Exports vs dispatch.** Every wire-message class exported from
   ``repro.message`` must be matched by an ``isinstance`` arm reachable
   from a dispatch entry point (``INR.handle_message``, the DSR's
   handler). An exported message nobody dispatches is either dead wire
   format or — worse — a payload that silently vanishes on arrival.
2. **Drop counters vs span statuses.** Every ``drops_*`` field on
   ``InrStats`` must have a matching ``drop:<cause>`` span-status
   emission somewhere, so every counted loss is attributable in a
   trace (the OBSERVABILITY contract).
3. **Drop counters vs PROTOCOL.md.** Every drop cause must be
   mentioned in the protocol document, so the spec enumerates the ways
   a packet can die.

All checks are one-directional from the declared surface (the export
list, the stats dataclass) toward its consumers; span-status detection
is best-effort over string constants in modules that reference
``DROP_PREFIX`` (the codebase emits both literal ``"drop:x"`` statuses
and ``DROP_PREFIX + cause`` concatenations with the cause threaded as a
literal argument).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..engine import Finding
from ..project import KIND_CLASS, ProjectModel, _attribute_chain
from . import ProjectRule, register


def _string_constants(tree: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _references_name(tree: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(tree)
    )


@register
class ProtocolExhaustiveRule(ProjectRule):
    id = "protocol-exhaustive"
    summary = (
        "every exported wire message needs a reachable isinstance "
        "dispatch arm; every drops_* counter needs a drop:<cause> span "
        "emission and a PROTOCOL.md mention"
    )
    default_options = {
        #: The package whose ``__all__`` declares the wire surface.
        "message_package": "repro.message",
        #: Dispatch roots; isinstance arms are collected from every
        #: project function reachable from these.
        "dispatch_entries": (
            "repro.resolver.inr.INR.handle_message",
            "repro.overlay.dsr.DomainSpaceResolver.handle_message",
        ),
        #: The stats dataclass carrying per-cause drop counters.
        "stats_class": "repro.resolver.inr.InrStats",
        "drops_prefix": "drops_",
        #: Exported names that are wire *format*, not dispatched
        #: payloads: headers, enums, records carried inside payloads,
        #: error types, and InsMessage (dispatched wrapped in the
        #: resolver's DataPacket).
        "non_payload": (
            "Binding", "CustodyRecord", "DelegateRecord",
            "DelegationWireError", "Delivery", "Header", "HeaderError",
            "InsMessage",
        ),
        #: Protocol document checked for drop-cause mentions, relative
        #: to the lint root; the doc surface is skipped when absent.
        "protocol_doc": "docs/PROTOCOL.md",
    }

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        yield from self._check_dispatch(model)
        yield from self._check_drop_causes(model)

    # ------------------------------------------------------------------
    # Surface 1: exports vs reachable isinstance arms
    # ------------------------------------------------------------------
    def _check_dispatch(self, model: ProjectModel) -> Iterator[Finding]:
        package = str(self.options["message_package"])
        info = model.modules.get(package)
        if info is None or not info.exports:
            return  # tree without the wire package (fixtures, subsets)
        entries = [str(e) for e in self.options["dispatch_entries"]]
        if not any(e in model.functions for e in entries):
            return  # no dispatcher in scope — half a tree, stay quiet
        arms = self._reachable_isinstance_arms(model, entries)
        ignored = set(self.options["non_payload"])
        for export, _lineno in info.exports:
            if export in ignored:
                continue
            resolved = model.resolve_local(package, export)
            if resolved is None or resolved[0] != KIND_CLASS:
                continue  # constants, helper functions, unresolved
            class_qname = resolved[1]
            if class_qname in arms:
                continue
            cls = model.classes[class_qname]
            yield self.finding_at(
                model, cls.path, cls.node.lineno,
                f"wire message {export} is exported from {package} but "
                "no isinstance dispatch arm reachable from "
                f"{' / '.join(entries)} matches it; arriving payloads "
                "of this type vanish undispatched — add a handler arm "
                "or unexport it",
            )

    def _reachable_isinstance_arms(
        self, model: ProjectModel, entries: List[str]
    ) -> Set[str]:
        arms: Set[str] = set()
        for qname in model.reachable_from(entries):
            fn = model.functions[qname]
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    continue
                types = node.args[1]
                candidates = types.elts if isinstance(types, ast.Tuple) \
                    else [types]
                for candidate in candidates:
                    chain = _attribute_chain(candidate)
                    if chain is None:
                        continue
                    resolved = model.resolve_dotted(fn.module, chain)
                    if resolved is not None and resolved[0] == KIND_CLASS:
                        arms.add(resolved[1])
        return arms

    # ------------------------------------------------------------------
    # Surfaces 2 + 3: drops_* counters vs spans vs PROTOCOL.md
    # ------------------------------------------------------------------
    def _check_drop_causes(self, model: ProjectModel) -> Iterator[Finding]:
        stats_qname = str(self.options["stats_class"])
        cls = model.classes.get(stats_qname)
        if cls is None:
            return
        prefix = str(self.options["drops_prefix"])
        emitted = self._emitted_statuses(model)
        doc_text = self._protocol_doc_text(model)
        for stmt in cls.node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id.startswith(prefix)
            ):
                continue
            field = stmt.target.id
            cause = field[len(prefix):].replace("_", "-")
            if f"drop:{cause}" not in emitted and cause not in emitted:
                yield self.finding_at(
                    model, cls.path, stmt.lineno,
                    f"drop counter {field} has no matching "
                    f"'drop:{cause}' span-status emission; a loss "
                    "counted here is invisible to trace queries — end "
                    "the hop span with DROP_PREFIX + the cause",
                )
            if doc_text is not None and cause not in doc_text and \
                    field not in doc_text:
                doc = self.options["protocol_doc"]
                yield self.finding_at(
                    model, cls.path, stmt.lineno,
                    f"drop cause '{cause}' ({field}) is not mentioned "
                    f"in {doc}; the spec must enumerate every way a "
                    "packet can die",
                )

    def _emitted_statuses(self, model: ProjectModel) -> Set[str]:
        """Strings that can form a ``drop:<cause>`` span status.

        Collects every ``drop:``-prefixed literal project-wide, plus
        *all* string constants from modules that reference
        ``DROP_PREFIX`` — those modules build statuses by
        concatenation, with the cause carried as a literal argument.
        """
        statuses: Set[str] = set()
        for info in model.modules.values():
            tree = info.ctx.tree
            constants = _string_constants(tree)
            statuses.update(s for s in constants if s.startswith("drop:"))
            if _references_name(tree, "DROP_PREFIX"):
                statuses.update(constants)
        return statuses

    def _protocol_doc_text(self, model: ProjectModel) -> Optional[str]:
        doc = model.root / str(self.options["protocol_doc"])
        try:
            return doc.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
