"""Hygiene rules: shared-state and error-masking footguns.

``no-mutable-default``
    A mutable default argument is evaluated once and shared across
    every call — in a system built around per-run simulator instances
    that is cross-run state leakage, the exact thing seed isolation
    exists to prevent.

``no-silent-except``
    The protocol handlers (INR/DSR dispatch, reliable channel, client
    retry loop) are where faults surface. A bare ``except:`` also
    catches ``SystemExit``/``KeyboardInterrupt``; an ``except`` whose
    body is only ``pass``/``continue`` erases the fault the chaos
    harness is trying to observe. Count it, log it, or re-raise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding
from . import Rule, register

#: Constructor calls whose results are mutable containers.
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)

#: AST literal nodes that build a fresh mutable container.
MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)


@register
class MutableDefaultRule(Rule):
    id = "no-mutable-default"
    summary = (
        "mutable default arguments are shared across calls; default to "
        "None and construct inside the function"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is evaluated once and "
                        "shared by every call; use None and build the "
                        "container inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in MUTABLE_CONSTRUCTORS
        return False


@register
class SilentExceptRule(Rule):
    id = "no-silent-except"
    summary = (
        "no bare except, and no handler that swallows the exception "
        "without recording it"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except also catches SystemExit and "
                    "KeyboardInterrupt; name the exception type "
                    "(at minimum 'except Exception')",
                )
            elif self._swallows(node):
                yield self.finding(
                    ctx,
                    node,
                    "handler silently swallows the exception, hiding "
                    "protocol faults from the chaos invariants; count "
                    "it in stats, log it, or re-raise",
                )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring / ellipsis placeholder
            return False
        return True
