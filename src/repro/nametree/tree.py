"""The name-tree and its two central algorithms (Section 2.3).

``NameTree`` stores the superposition of every name-specifier an INR
knows about and maps each to its name-record. ``lookup`` implements
LOOKUP-NAME (Figure 5) and ``get_name`` implements GET-NAME (Figure 6).
Grafting (``insert``), soft-state expiry (``expire``) and branch pruning
keep the structure consistent as advertisements come and go.

Beyond the paper, ``lookup`` memoizes its results (see
``NameTree.__init__``): query resolution at scale is dominated by
repeated queries over a record set that changes far less often than it
is read, so results are cached under the query's canonical key and the
whole memo is flushed when a tree *epoch* counter advances. The epoch
moves only on membership changes — graft, remove, expiry — never on a
pure refresh, so periodic soft-state refreshes keep the memo warm.

Two implementation notes on the hot paths:

- LOOKUP-NAME runs iteratively over an explicit frame stack (names of
  any depth resolve without recursion) and reads per-value-node subtree
  sets through an epoch-keyed frozenset cache
  (:meth:`.nodes.ValueNode.subtree_frozen`), so repeated distinct
  queries against an unchanged record set stop re-walking subtrees.
- Mutations can be grouped into a *batch epoch*
  (:meth:`begin_batch`/:meth:`end_batch`/:meth:`batch`): the epoch
  advances once when the outermost batch closes instead of once per
  graft, which keeps one simulator delivery of N periodic updates from
  invalidating lookup state N times.

One fidelity note on LOOKUP-NAME: the paper states that omitted
attributes correspond to wild-cards for both queries and advertisements.
When a query av-pair is a leaf but the matched value-node is not (the
advertisement is more specific than the query), we therefore intersect
with all records in the value-node's *subtree*; Figure 5's prose says
"the name-records of Tv", and Figure 4's caption says value-nodes point
to all records they correspond to, which is the same set.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..naming import AVPair, NameSpecifier, classify_value
from .nodes import AttributeNode, ValueNode
from .record import AnnouncerID, NameRecord

#: A shared always-empty cursor. The iterative LOOKUP-NAME assigns it to
#: a frame whose candidate set just became empty, which ends that
#: frame's pair loop without a per-pair emptiness test.
_EXHAUSTED: Iterator[AVPair] = iter(())


@dataclass(frozen=True)
class InsertOutcome:
    """What an insert did, for the discovery protocol's benefit.

    ``created`` — the announcer was previously unknown here.
    ``changed`` — the record carries new information (new name, new
    endpoints, better metric, ...) and must trigger an update to
    neighbor INRs; a pure periodic refresh leaves it False.
    """

    record: NameRecord
    created: bool
    changed: bool


class NameTree:
    """A per-virtual-space superposition of name-specifiers."""

    def __init__(
        self,
        vspace: str = "default",
        search: str = "hash",
        index_subtrees: bool = False,
        memoize: bool = True,
        memo_capacity: int = 1024,
    ) -> None:
        """``search`` selects how attribute/value children are found:
        ``"hash"`` (the implementation the paper measures) or
        ``"linear"`` (the strawman in the Section 5.1.1 analysis, kept
        for the ablation benchmark). ``index_subtrees`` additionally
        maintains per-value-node record aggregates so wild-card unions
        cost O(result) instead of O(subtree) — an optimization ablation
        beyond the paper. ``memoize`` enables the LOOKUP-NAME memo: a
        bounded LRU of ``lookup()`` result sets keyed by the query's
        canonical key, invalidated wholesale whenever the tree's record
        *set* changes (pure refreshes keep it warm).
        """
        if search not in ("hash", "linear"):
            raise ValueError(f"unknown search strategy: {search!r}")
        if memo_capacity <= 0:
            raise ValueError("memo_capacity must be positive")
        self.vspace = vspace
        self._linear = search == "linear"
        self._root = ValueNode(value=None, parent=None, indexed=index_subtrees)
        self._by_announcer: Dict[AnnouncerID, NameRecord] = {}
        # LOOKUP-NAME memo. The epoch counter advances only on
        # membership changes (graft, remove, expire); the memo is
        # flushed lazily at the next lookup that observes a newer
        # epoch, so a burst of mutations costs one flush, not many.
        self._memoize = memoize
        self._memo: "OrderedDict[tuple, FrozenSet[NameRecord]]" = OrderedDict()
        self._memo_capacity = memo_capacity
        self._memo_epoch = 0
        self._epoch = 0
        # Batch-epoch state: while a batch is open, membership changes
        # set the dirty flag instead of advancing the epoch; the
        # outermost end_batch() commits one advance for the whole group.
        self._batch_depth = 0
        self._batch_dirty = False
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0

    @property
    def epoch(self) -> int:
        """Mutation counter: advances only when the record set changes.

        Inside an open batch the counter is deferred; reads mid-batch
        see the last committed value (lookups commit it themselves so
        they never serve stale results).
        """
        return self._epoch

    # ------------------------------------------------------------------
    # Batched mutation epochs
    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Open a batch: membership changes until :meth:`end_batch`
        advance the epoch once, together, not once each.

        Nests; only the outermost close commits. Use :meth:`batch` for
        the context-manager form.
        """
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Close a batch, committing one epoch advance if anything
        inside it changed tree membership."""
        if self._batch_depth == 0:
            raise RuntimeError("end_batch() without begin_batch()")
        self._batch_depth -= 1
        if self._batch_depth == 0 and self._batch_dirty:
            self._batch_dirty = False
            self._epoch += 1

    @contextmanager
    def batch(self):
        """Context manager wrapping :meth:`begin_batch`/:meth:`end_batch`."""
        self.begin_batch()
        try:
            yield self
        finally:
            self.end_batch()

    def _bump_epoch(self) -> None:
        if self._batch_depth:
            self._batch_dirty = True
        else:
            self._epoch += 1

    # ------------------------------------------------------------------
    # Child search (hash vs linear, for the Section 5.1.1 ablation)
    # ------------------------------------------------------------------
    def _find_attribute(self, node: ValueNode, attribute: str) -> Optional[AttributeNode]:
        if self._linear:
            for candidate, child in node.children.items():
                if candidate == attribute:
                    return child
            return None
        return node.children.get(attribute)

    def _find_value(self, node: AttributeNode, value: str) -> Optional[ValueNode]:
        if self._linear:
            for candidate, child in node.children.items():
                if candidate == value:
                    return child
            return None
        return node.children.get(value)

    # ------------------------------------------------------------------
    # Grafting and removal
    # ------------------------------------------------------------------
    def insert(self, name: NameSpecifier, record: NameRecord) -> InsertOutcome:
        """Graft ``name`` and attach ``record`` at its leaf value-nodes.

        If this announcer is already known the existing record is
        updated in place (a refresh), re-grafting only when the name
        itself changed (service mobility, Section 3.2). Advertisements
        must be concrete: wild-cards and ranges are query-only.

        Refreshes take a fast path: the advertised name's canonical key
        is stored on the record at graft time, so detecting "same name
        again" is a key comparison, not a GET-NAME reconstruction — and
        an equal key proves the name is the one already validated as
        concrete at graft time, so the validation walk is skipped too.
        A pure refresh leaves the tree epoch (and therefore the lookup
        memo) untouched.
        """
        key = name.canonical_key()
        existing = self._by_announcer.get(record.announcer)
        if existing is not None and existing.advertised_key == key:
            record.vspace = self.vspace
            changed = not existing.same_payload(record)
            existing.endpoints = list(record.endpoints)
            existing.anycast_metric = record.anycast_metric
            existing.route = record.route
            existing.expires_at = record.expires_at
            return InsertOutcome(existing, created=False, changed=changed)
        name.require_concrete()
        if name.is_empty:
            raise ValueError("cannot advertise an empty name-specifier")
        record.vspace = self.vspace
        if existing is not None:
            self.remove(existing)
            self._graft(name, record, key)
            return InsertOutcome(record, created=False, changed=True)
        self._graft(name, record, key)
        return InsertOutcome(record, created=True, changed=True)

    def _graft(self, name: NameSpecifier, record: NameRecord, key: tuple) -> None:
        record.attachments = []
        record.advertised_key = key
        for pair in name.roots:
            self._graft_pair(self._root, pair, record)
        self._by_announcer[record.announcer] = record
        self._bump_epoch()

    def _graft_pair(self, value_node: ValueNode, pair: AVPair, record: NameRecord) -> None:
        # Explicit stack, pushed in reverse child order so leaves attach
        # in exactly the pre-order the recursive formulation produced
        # (attachment order feeds GET-NAME reconstruction order, which
        # feeds update wire bytes: it must stay deterministic).
        stack: List[Tuple[ValueNode, AVPair]] = [(value_node, pair)]
        while stack:
            parent_value, pair = stack.pop()
            attribute_node = parent_value.ensure_child(pair.attribute)
            child_value = attribute_node.ensure_child(pair.value)
            children = pair._children
            if not children:
                child_value.records.add(record)
                record.attachments.append(child_value)
                self._adjust_aggregates(child_value, record, +1)
            else:
                for child_pair in list(children.values())[::-1]:
                    stack.append((child_value, child_pair))

    @staticmethod
    def _adjust_aggregates(leaf: ValueNode, record: NameRecord, delta: int) -> None:
        """Maintain the optional subtree indexes along one leaf's
        ancestor chain (counting attachments, since one record may hang
        from several leaves under a shared ancestor)."""
        node: Optional[ValueNode] = leaf
        while node is not None:
            if node.aggregate is None:
                return
            count = node.aggregate.get(record, 0) + delta
            if count <= 0:
                node.aggregate.pop(record, None)
            else:
                node.aggregate[record] = count
            attribute_node = node.parent
            node = attribute_node.parent if attribute_node is not None else None

    def remove(self, record: NameRecord) -> bool:
        """Detach ``record`` and prune branches it alone kept alive.

        Returns False when the record is not in this tree.
        """
        stored = self._by_announcer.get(record.announcer)
        if stored is not record:
            return False
        del self._by_announcer[record.announcer]
        for value_node in record.attachments:
            value_node.records.discard(record)
            self._adjust_aggregates(value_node, record, -1)
            value_node.prune_upwards()
        record.attachments = []
        record.advertised_key = None
        self._bump_epoch()
        return True

    def remove_announcer(self, announcer: AnnouncerID) -> Optional[NameRecord]:
        """Remove and return the record for ``announcer``, if present."""
        record = self._by_announcer.get(announcer)
        if record is not None:
            self.remove(record)
        return record

    # ------------------------------------------------------------------
    # Soft state
    # ------------------------------------------------------------------
    def expire(self, now: float, grace: float = 0.0) -> List[NameRecord]:
        """Remove every record whose lifetime elapsed; returns them.

        ``grace`` retains an expired record for that many extra seconds
        before collection. A graced record is a tombstone with memory:
        it never satisfies routing or queries (``is_expired`` still
        holds), but a refresh arriving inside the window re-admits the
        name as a fast-path update instead of a from-scratch rebuild —
        the partition-tolerant soft-state behavior.

        A sweep that collects several records advances the epoch once
        (it is one membership change from the memo's point of view).
        """
        expired = [
            record
            for record in self._by_announcer.values()
            if now - grace >= record.expires_at
        ]
        if expired:
            self.begin_batch()
            try:
                for record in expired:
                    self.remove(record)
            finally:
                self.end_batch()
        return expired

    def next_expiry(self) -> Optional[float]:
        """Earliest expiration time among live records, or None."""
        if not self._by_announcer:
            return None
        return min(record.expires_at for record in self._by_announcer.values())

    # ------------------------------------------------------------------
    # LOOKUP-NAME (Figure 5)
    # ------------------------------------------------------------------
    def lookup(self, name: NameSpecifier) -> Set[NameRecord]:
        """All name-records whose advertisements satisfy ``name``.

        With memoization on (the default), a repeated query against an
        unchanged record set is answered from a bounded LRU memo keyed
        by the query's canonical key. Records are shared objects, so
        in-place refreshes (endpoints, metrics, expiry) are visible
        through memoized results without any invalidation.

        A lookup inside an open batch commits the batch's pending epoch
        advance first, so it always observes the mutations made so far.
        """
        if self._batch_dirty:
            self._batch_dirty = False
            self._epoch += 1
        if not self._memoize:
            return set(self._lookup(self._root, name._roots.values()))
        if self._memo_epoch != self._epoch:
            if self._memo:
                self._memo.clear()
                self.memo_invalidations += 1
            self._memo_epoch = self._epoch
        key = name.canonical_key()
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            self._memo.move_to_end(key)
            return set(cached)
        self.memo_misses += 1
        result = self._lookup(self._root, name._roots.values())
        if len(self._memo) >= self._memo_capacity:
            self._memo.popitem(last=False)
        if result.__class__ is frozenset:
            self._memo[key] = result
            return set(result)
        # ``result`` is a plain set: either one _lookup built (safe to
        # hand out) or a leaf value-node's aliased records set (not
        # safe). Memoize a frozen copy and return an owned copy rather
        # than distinguishing the two.
        self._memo[key] = frozen = frozenset(result)
        return set(frozen)

    def wildcard_scan_cost(self, attribute: str) -> int:
        """Nodes LOOKUP-NAME's wild-card branch must walk to union
        every subtree under ``attribute``'s values when the incremental
        index is off — the analytic cost the ``subtree_index`` ablation
        reports (0 with the index: every union is a dictionary copy).
        Counting instead of timing keeps the metric deterministic and
        the lookup hot path uninstrumented.
        """
        attribute_node = self._root.children.get(attribute)
        if attribute_node is None:
            return 0
        return sum(
            value_node.subtree_scan_cost()
            for value_node in attribute_node.children.values()
        )

    _EMPTY: FrozenSet[NameRecord] = frozenset()

    def _lookup(self, tree_node: ValueNode, pairs):
        """Figure 5, iteratively: an explicit stack of frames replaces
        recursion (a frame per query level), and subtree record sets
        come from the epoch-keyed frozenset caches on value-nodes.

        Candidate sets are never mutated in place, so the cached
        frozensets flow through intersections unchanged and the common
        single-constraint case costs zero copies. The returned set may
        therefore BE one of those shared frozensets — ``lookup`` copies
        before exposing a result the caller can own.

        ``None`` candidates stand for the universal set so we never
        materialize "all possible name-records" just to intersect it
        away.
        """
        if self._linear:
            return self._lookup_linear(tree_node, pairs)
        epoch = self._epoch
        empty = self._EMPTY
        # Frame: [value_node, pair iterator, candidates]. The iterator
        # doubles as the resume cursor after a child frame returns; a
        # finished frame's result is merged straight into its parent's
        # candidates slot when it pops. Early exit on an empty
        # intersection happens where the emptiness arises — including
        # exhausting the parent's iterator from the pop-merge — so the
        # per-pair loop carries no emptiness re-check.
        frames: List[list] = [[tree_node, iter(pairs), None]]
        push = frames.append
        while True:
            frame = frames[-1]
            node = frame[0]
            pending = frame[1]
            candidates = frame[2]
            descend = False
            for pair in pending:
                attribute_node = node.children.get(pair.attribute)
                if attribute_node is None:
                    # No advertisement classifies this attribute here,
                    # so every one of them omitted it: no constraint
                    # (omitted attributes are wild-cards).
                    continue
                value = pair.value
                if value != "*" and (not value or value[0] not in "<>"):
                    # Literal value: hash straight to the value-node,
                    # no matcher object.
                    value_node = attribute_node.children.get(value)
                    if value_node is None:
                        candidates = empty
                        break
                    children = pair._children
                    if not value_node.children or not children:
                        # Query leaf or tree leaf: intersect with the
                        # value-node's whole subtree (omitted attributes
                        # are wild-cards).
                        if value_node._sub_epoch == epoch:
                            subtree = value_node._sub_fs
                        else:
                            subtree = value_node.subtree_frozen(epoch)
                        if candidates is None:
                            candidates = subtree
                        else:
                            candidates = candidates & subtree
                            if not candidates:
                                break
                    else:
                        frame[2] = candidates
                        push([value_node, iter(children.values()), None])
                        descend = True
                        break
                else:
                    # Wild-card or range: union the subtrees of every
                    # matching value. Av-pairs below a wild-card are
                    # ignored, exactly as the paper specifies.
                    matches = classify_value(value).matches
                    selected: Set[NameRecord] = set()
                    for advertised, value_node in attribute_node.children.items():
                        if matches(advertised):
                            if value_node._sub_epoch == epoch:
                                selected |= value_node._sub_fs
                            else:
                                selected |= value_node.subtree_frozen(epoch)
                    if candidates is None:
                        candidates = selected
                    else:
                        candidates = candidates & selected
                        if not candidates:
                            break
            if descend:
                continue
            if candidates is None:
                # No constraint applied at this level: everything below
                # (and at) this node matches.
                if node._sub_epoch == epoch:
                    returned = node._sub_fs
                else:
                    returned = node.subtree_frozen(epoch)
            else:
                records = node.records
                if records:
                    returned = candidates | records
                else:
                    returned = candidates
            frames.pop()
            if not frames:
                return returned
            parent = frames[-1]
            parent_candidates = parent[2]
            if parent_candidates is not None:
                returned = parent_candidates & returned
            parent[2] = returned
            if not returned:
                # Intersection can only stay empty: skip the parent's
                # remaining pairs by exhausting its cursor.
                parent[1] = _EXHAUSTED

    def _lookup_linear(self, tree_node: ValueNode, pairs):
        """The ``search="linear"`` ablation: the same iterative Figure 5
        as :meth:`_lookup`, with dict scans in place of hash descent
        (the Section 5.1.1 strawman). Not a hot path."""
        epoch = self._epoch
        empty = self._EMPTY
        frames: List[list] = [[tree_node, iter(pairs), None]]
        push = frames.append
        while True:
            frame = frames[-1]
            node = frame[0]
            pending = frame[1]
            candidates = frame[2]
            descend = False
            for pair in pending:
                if candidates is not None and not candidates:
                    break  # early exit: intersection can only stay empty
                attribute_node = None
                for attribute, child in node.children.items():
                    if attribute == pair.attribute:
                        attribute_node = child
                        break
                if attribute_node is None:
                    continue
                value = pair.value
                if value != "*" and (not value or value[0] not in "<>"):
                    value_node = None
                    for candidate, child in attribute_node.children.items():
                        if candidate == value:
                            value_node = child
                            break
                    if value_node is None:
                        candidates = empty
                        continue
                    children = pair._children
                    if not value_node.children or not children:
                        subtree = value_node.subtree_frozen(epoch)
                        if candidates is None:
                            candidates = subtree
                        else:
                            candidates = candidates & subtree
                    else:
                        frame[2] = candidates
                        push([value_node, iter(children.values()), None])
                        descend = True
                        break
                else:
                    matches = classify_value(value).matches
                    selected: Set[NameRecord] = set()
                    for advertised, value_node in attribute_node.children.items():
                        if matches(advertised):
                            selected |= value_node.subtree_frozen(epoch)
                    if candidates is None:
                        candidates = selected
                    else:
                        candidates = candidates & selected
            if descend:
                continue
            if candidates is None:
                returned = node.subtree_frozen(epoch)
            else:
                records = node.records
                returned = candidates | records if records else candidates
            frames.pop()
            if not frames:
                return returned
            parent = frames[-1]
            parent_candidates = parent[2]
            if parent_candidates is None:
                parent[2] = returned
            else:
                parent[2] = parent_candidates & returned

    # ------------------------------------------------------------------
    # GET-NAME (Figure 6)
    # ------------------------------------------------------------------
    def get_name(self, record: NameRecord) -> NameSpecifier:
        """Reconstruct the name-specifier advertised for ``record``.

        Traces upward from each of the record's leaf value-nodes,
        grafting reconstructed fragments onto av-pairs already rebuilt
        (tracked through the transient PTR variable on value-nodes).
        """
        name = NameSpecifier()
        touched: List[ValueNode] = [self._root]
        self._root.ptr = name
        try:
            for value_node in record.attachments:
                self._trace(value_node, None, touched)
        finally:
            for node in touched:
                node.ptr = None
        return name

    def _trace(
        self,
        value_node: ValueNode,
        fragment: Optional[AVPair],
        touched: List[ValueNode],
    ) -> None:
        # Iterative upward walk: the chain is as long as the name is
        # deep, and deep names must reconstruct without recursion.
        while value_node.ptr is None:
            assert value_node.parent is not None, "root always has a PTR"
            pair = AVPair(value_node.parent.attribute, value_node.value)
            value_node.ptr = pair
            touched.append(value_node)
            if fragment is not None:
                pair.add_child(fragment)
            fragment = pair
            value_node = value_node.parent.parent
        # Something to graft onto: attach the fragment and stop.
        if fragment is not None:
            self._graft_fragment(value_node, fragment)

    @staticmethod
    def _graft_fragment(value_node: ValueNode, fragment: AVPair) -> None:
        if value_node.is_root:
            value_node.ptr.add_pair(fragment)
        else:
            value_node.ptr.add_child(fragment)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def record_for(self, announcer: AnnouncerID) -> Optional[NameRecord]:
        """The live record announced by ``announcer``, or None."""
        return self._by_announcer.get(announcer)

    def records(self) -> Iterator[NameRecord]:
        """All live records, in no particular order."""
        return iter(list(self._by_announcer.values()))

    def names(self) -> Iterator[Tuple[NameSpecifier, NameRecord]]:
        """All (name-specifier, record) pairs, reconstructed by GET-NAME.

        This is exactly what the discovery protocol transmits in
        periodic updates (Section 2.3.3).
        """
        for record in list(self._by_announcer.values()):
            yield self.get_name(record), record

    def __len__(self) -> int:
        """Number of live name-records (distinct announcers)."""
        return len(self._by_announcer)

    def __contains__(self, announcer: AnnouncerID) -> bool:
        return announcer in self._by_announcer

    def node_counts(self) -> Tuple[int, int]:
        """(attribute-node count, value-node count), excluding the root."""
        attributes = 0
        values = 0
        stack = [self._root]
        while stack:
            value_node = stack.pop()
            for attribute_node in value_node.children.values():
                attributes += 1
                for child in attribute_node.children.values():
                    values += 1
                    stack.append(child)
        return attributes, values

    @property
    def root(self) -> ValueNode:
        """The root value-node (read-only use: sizing, visualization)."""
        return self._root

    def __repr__(self) -> str:
        attributes, values = self.node_counts()
        return (
            f"NameTree(vspace={self.vspace!r}, records={len(self)}, "
            f"attribute_nodes={attributes}, value_nodes={values})"
        )
