"""Memory accounting for name-trees (used by the Figure 13 benchmark).

The paper reports the Java heap allocated to the name-tree as names are
added (about 0.5 MB at a few hundred names to 4 MB at 14300). We measure
the same quantity natively: a deep ``sys.getsizeof`` walk over the tree's
nodes, dictionaries, records and strings, deduplicating shared objects by
identity so interned attribute/value strings are counted once, exactly as
they are stored once.
"""

from __future__ import annotations

import sys
from typing import Set

from .nodes import ValueNode
from .record import NameRecord
from .tree import NameTree


def _sizeof(obj: object, seen: Set[int]) -> int:
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    return sys.getsizeof(obj)


def _record_size(record: NameRecord, seen: Set[int]) -> int:
    total = _sizeof(record, seen)
    total += _sizeof(record.announcer, seen)
    total += _sizeof(record.announcer.host, seen)
    total += _sizeof(record.endpoints, seen)
    for endpoint in record.endpoints:
        total += _sizeof(endpoint, seen)
        total += _sizeof(endpoint.host, seen)
        total += _sizeof(endpoint.transport, seen)
    total += _sizeof(record.route, seen)
    if record.route.next_hop is not None:
        total += _sizeof(record.route.next_hop, seen)
    total += _sizeof(record.attachments, seen)
    return total


def name_tree_bytes(tree: NameTree) -> int:
    """Resident bytes of ``tree``: nodes, dicts, records and strings."""
    seen: Set[int] = set()
    total = _sizeof(tree, seen)
    stack = [tree.root]
    while stack:
        value_node = stack.pop()
        total += _sizeof(value_node, seen)
        if value_node.value is not None:
            total += _sizeof(value_node.value, seen)
        total += _sizeof(value_node.children, seen)
        total += _sizeof(value_node.records, seen)
        if value_node._sub_fs is not None:
            # The memoized subtree frozenset is resident memory the tree
            # owns; its record elements are deduplicated by identity.
            total += _sizeof(value_node._sub_fs, seen)
        if value_node.aggregate is not None:
            total += _sizeof(value_node.aggregate, seen)
        for record in value_node.records:
            total += _record_size(record, seen)
        for attribute_node in value_node.children.values():
            total += _sizeof(attribute_node, seen)
            total += _sizeof(attribute_node.attribute, seen)
            total += _sizeof(attribute_node.children, seen)
            stack.extend(attribute_node.children.values())
    return total


def name_tree_megabytes(tree: NameTree) -> float:
    """``name_tree_bytes`` scaled to megabytes, as Figure 13 plots."""
    return name_tree_bytes(tree) / (1024.0 * 1024.0)
