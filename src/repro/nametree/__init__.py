"""Name-trees, name-records and the lookup/extraction algorithms
(Section 2.3 of the paper).

Public surface:

- :class:`NameTree` — per-vspace store with LOOKUP-NAME and GET-NAME.
- :class:`NameRecord`, :class:`Route`, :class:`Endpoint`,
  :class:`AnnouncerID` — the resolver-side state for announced names.
- :func:`name_tree_bytes` — deep memory accounting (Figure 13).
"""

from .nodes import AttributeNode, ValueNode
from .record import (
    DEFAULT_LIFETIME,
    LOCAL_ROUTE,
    AnnouncerID,
    Endpoint,
    NameRecord,
    Route,
)
from .sizing import name_tree_bytes, name_tree_megabytes
from .tree import InsertOutcome, NameTree

__all__ = [
    "AnnouncerID",
    "AttributeNode",
    "DEFAULT_LIFETIME",
    "Endpoint",
    "InsertOutcome",
    "LOCAL_ROUTE",
    "NameRecord",
    "NameTree",
    "Route",
    "ValueNode",
    "name_tree_bytes",
    "name_tree_megabytes",
]
