"""Name-records and their constituents (Section 2.3.1).

A name-record is what a name-tree lookup returns. It contains the
route to the next-hop INR for the announcer (with its overlay metric,
used by intentional multicast), the network locations of the potential
final destinations (returned on early binding), the announcer's
application-advertised metric (minimized by intentional anycast), the
record's soft-state expiration time and the AnnouncerID that
differentiates identical names announced by different applications.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Default soft-state lifetime for a name-record, seconds. Records not
#: refreshed within one lifetime are discarded (Section 2.2).
DEFAULT_LIFETIME = 60.0


@dataclass(frozen=True, order=True)
class AnnouncerID:
    """Unique identifier of the application announcing a name.

    The paper's implementation concatenates the announcer's IP address
    with its startup time, allowing multiple instances of the same
    service on one node (Section 2.2).
    """

    host: str
    startup_time: float

    _sequence = itertools.count(1)

    @classmethod
    def generate(cls, host: str, startup_time: Optional[float] = None) -> "AnnouncerID":
        """Create an AnnouncerID for ``host``.

        When ``startup_time`` is not given a process-unique monotonic
        sequence number stands in for it, which preserves the uniqueness
        property the paper relies on without consulting a wall clock.
        """
        if startup_time is None:
            startup_time = float(next(cls._sequence))
        return cls(host=host, startup_time=startup_time)

    def __str__(self) -> str:
        return f"{self.host}@{self.startup_time:g}"


@dataclass(frozen=True, order=True)
class Endpoint:
    """A network location of a final destination.

    Updates carry, for each IP address, a set of [port-number,
    transport-type] pairs so clients can implement early binding
    (Section 2.2); we flatten to one endpoint per (host, port,
    transport) triple.
    """

    host: str
    port: int = 0
    transport: str = "udp"

    def __str__(self) -> str:
        return f"{self.transport}://{self.host}:{self.port}"


@dataclass(frozen=True)
class Route:
    """The next-hop INR for a record and the overlay metric of the path.

    ``next_hop`` is None for records announced by a directly-attached
    application; the metric is then zero by definition.
    """

    next_hop: Optional[str]
    metric: float = 0.0

    @property
    def is_local(self) -> bool:
        return self.next_hop is None

    def __str__(self) -> str:
        hop = self.next_hop if self.next_hop is not None else "<local>"
        return f"Route(via={hop}, metric={self.metric:g})"


LOCAL_ROUTE = Route(next_hop=None, metric=0.0)


@dataclass
class NameRecord:
    """The resolver-side state for one announced name.

    Mutable on purpose: refreshes update endpoints, metrics, routes and
    expiry in place so every leaf value-node pointer stays valid.
    """

    announcer: AnnouncerID
    endpoints: List[Endpoint] = field(default_factory=list)
    anycast_metric: float = 0.0
    route: Route = LOCAL_ROUTE
    expires_at: float = math.inf
    vspace: str = "default"

    #: Leaf value-nodes of this record's name in its tree; maintained by
    #: NameTree.insert/remove, read by GET-NAME.
    attachments: list = field(default_factory=list, repr=False)

    #: Canonical key of the advertised name, stored at graft time so a
    #: refresh can detect "same name again" without re-running GET-NAME;
    #: None while the record is not grafted anywhere.
    advertised_key: Optional[tuple] = field(default=None, repr=False)

    #: Memoized __hash__. Records live in many sets (value-node record
    #: sets, subtree caches, lookup results) and set operations probe
    #: hashes constantly; recomputing the announcer/vspace tuple hash
    #: per probe dominated LOOKUP-NAME's intersection cost. Filled on
    #: first use, which happens no earlier than grafting — after
    #: ``vspace`` is finalized by the owning tree.
    _hash_cache: Optional[int] = field(default=None, repr=False, compare=False)

    def is_expired(self, now: float) -> bool:
        """True once the soft-state lifetime has elapsed unrefreshed."""
        return now >= self.expires_at

    def refresh(self, now: float, lifetime: float = DEFAULT_LIFETIME) -> None:
        """Extend the record's life by ``lifetime`` seconds from ``now``."""
        self.expires_at = now + lifetime

    def same_payload(self, other: "NameRecord") -> bool:
        """True when ``other`` carries no new routing information.

        Used to decide whether an incoming update is a pure refresh
        (periodic, no propagation needed) or new information that must
        trigger an update to neighbors (Section 2.2).
        """
        return (
            sorted(self.endpoints) == sorted(other.endpoints)
            and self.anycast_metric == other.anycast_metric
            and self.route == other.route
        )

    def __hash__(self) -> int:
        cached = self._hash_cache
        if cached is None:
            cached = hash((self.announcer, self.vspace))
            self._hash_cache = cached
        return cached

    def __eq__(self, other: object) -> bool:
        return self is other
