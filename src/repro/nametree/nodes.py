"""Internal nodes of a name-tree (Section 2.3.1, Figure 4).

A name-tree consists of alternating layers of *attribute-nodes*, which
contain orthogonal attributes, and *value-nodes*, which contain the
possible values of their parent attribute. Value-nodes carry pointers
to the name-records of advertisements whose name-specifier ends there.
The tree root behaves like a value-node with no value.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .record import NameRecord


class ValueNode:
    """A possible value of an attribute, with child attribute-nodes."""

    __slots__ = (
        "value",
        "parent",
        "children",
        "records",
        "ptr",
        "aggregate",
        "_sub_fs",
        "_sub_epoch",
    )

    def __init__(
        self,
        value: Optional[str],
        parent: Optional["AttributeNode"],
        indexed: bool = False,
    ) -> None:
        self.value = value
        self.parent = parent
        #: child attribute-nodes, keyed by attribute for O(1) descent
        self.children: Dict[str, AttributeNode] = {}
        #: records whose advertised name-specifier has a leaf at this node
        self.records: Set["NameRecord"] = set()
        #: transient pointer used by GET-NAME (Figure 6); None outside it
        self.ptr = None
        #: optional incrementally-maintained subtree index: maps every
        #: record at-or-below this node to its attachment count here.
        #: Enabled per-tree (NameTree(index_subtrees=True)); trades
        #: memory and O(depth) maintenance on insert/remove for O(1)
        #: wild-card unions in LOOKUP-NAME.
        self.aggregate: Optional[Dict["NameRecord", int]] = {} if indexed else None
        #: lazily-built set of subtree_records(), valid only while the
        #: owning tree's epoch equals ``_sub_epoch``. A frozenset for
        #: interior nodes; for leaves it aliases ``records`` outright.
        #: LOOKUP-NAME consults it so wildcard-heavy (and deep concrete)
        #: queries stop re-scanning unchanged subtrees; a membership
        #: change advances the tree epoch, which invalidates every cache
        #: by key without touching the nodes. Consumers must treat it as
        #: read-only.
        self._sub_fs: Optional[FrozenSet["NameRecord"]] = None
        self._sub_epoch: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def child(self, attribute: str) -> Optional["AttributeNode"]:
        return self.children.get(attribute)

    def ensure_child(self, attribute: str) -> "AttributeNode":
        """The attribute-node for ``attribute``, created if absent."""
        node = self.children.get(attribute)
        if node is None:
            node = AttributeNode(attribute, self)
            self.children[attribute] = node
        return node

    def subtree_records(self) -> Set["NameRecord"]:
        """All records attached at or below this value-node.

        This is the union LOOKUP-NAME computes for wild-card matching
        and for queries that end above the advertisement's leaf
        (omitted query attributes are wild-cards). With the subtree
        index enabled it is a dictionary-view copy; otherwise a
        traversal of the subtree.
        """
        if self.aggregate is not None:
            return set(self.aggregate)
        collected: Set["NameRecord"] = set(self.records)
        stack = list(self.children.values())
        while stack:
            attribute_node = stack.pop()
            for value_node in attribute_node.children.values():
                collected.update(value_node.records)
                stack.extend(value_node.children.values())
        return collected

    def subtree_scan_cost(self) -> int:
        """Nodes :meth:`subtree_records` visits when no aggregate is
        maintained — the traversal the incremental subtree index
        replaces with a dictionary copy. 0 when this node keeps an
        aggregate: the indexed fast path walks nothing.
        """
        if self.aggregate is not None:
            return 0
        visited = 1
        stack = list(self.children.values())
        while stack:
            attribute_node = stack.pop()
            visited += 1
            for value_node in attribute_node.children.values():
                visited += 1
                stack.extend(value_node.children.values())
        return visited

    def subtree_frozen(self, epoch: int) -> FrozenSet["NameRecord"]:
        """:meth:`subtree_records` as a cached frozenset, keyed by the
        owning tree's ``epoch``.

        The first call after a membership change rebuilds the set; every
        later call at the same epoch returns the cached object, so the
        unions and intersections of LOOKUP-NAME operate on shared
        frozensets instead of walking the subtree per query. Callers
        must not mutate the result (take ``set(...)`` to own a copy).
        """
        if self._sub_epoch == epoch:
            return self._sub_fs
        if self.aggregate is not None:
            frozen = frozenset(self.aggregate)
        elif not self.children:
            # A leaf's subtree IS its record set: alias it instead of
            # copying (leaf builds dominate a cold pass). The read-only
            # discipline holds because LOOKUP-NAME never mutates
            # candidate sets and the public API copies at the boundary;
            # a membership change advances the epoch, which retires the
            # alias before the records set is ever served stale.
            frozen = self.records
        else:
            collected = set(self.records)
            update = collected.update
            stack = list(self.children.values())
            pop = stack.pop
            extend = stack.extend
            while stack:
                attribute_node = pop()
                for value_node in attribute_node.children.values():
                    # A child whose cache is valid contributes its
                    # whole subtree at once; no need to re-walk it.
                    if value_node._sub_epoch == epoch:
                        update(value_node._sub_fs)
                    else:
                        update(value_node.records)
                        if value_node.children:
                            extend(value_node.children.values())
                        else:
                            # Caching a traversed leaf costs two slot
                            # stores; later queries that constrain on it
                            # directly then skip the build call.
                            value_node._sub_fs = value_node.records
                            value_node._sub_epoch = epoch
            frozen = frozenset(collected)
        self._sub_fs = frozen
        self._sub_epoch = epoch
        return frozen

    def walk_values(self) -> Iterator["ValueNode"]:
        """Yield this value-node and every value-node below it.

        Iterative: name-trees grown from deep programmatic names would
        exhaust the interpreter stack under a nested-generator walk.
        """
        stack = [self]
        while stack:
            value_node = stack.pop()
            yield value_node
            for attribute_node in list(value_node.children.values())[::-1]:
                stack.extend(list(attribute_node.children.values())[::-1])

    def prune_upwards(self) -> None:
        """Remove this node, and now-empty ancestors, from the tree.

        Called after detaching a record; keeps the tree from
        accumulating dead branches as soft-state expires.
        """
        node: Optional[ValueNode] = self
        while node is not None and not node.is_root:
            if node.records or node.children:
                return
            attribute_node = node.parent
            assert attribute_node is not None
            del attribute_node.children[node.value]  # type: ignore[arg-type]
            parent_value = attribute_node.parent
            if attribute_node.children:
                return
            del parent_value.children[attribute_node.attribute]
            node = parent_value

    def __repr__(self) -> str:
        label = "<root>" if self.is_root else self.value
        return f"ValueNode({label}, records={len(self.records)}, children={len(self.children)})"


class AttributeNode:
    """An orthogonal attribute, with one value-node per known value."""

    __slots__ = ("attribute", "parent", "children")

    def __init__(self, attribute: str, parent: ValueNode) -> None:
        self.attribute = attribute
        self.parent = parent
        #: child value-nodes keyed by value for O(1) exact-match descent
        self.children: Dict[str, ValueNode] = {}

    def child(self, value: str) -> Optional[ValueNode]:
        return self.children.get(value)

    def ensure_child(self, value: str) -> ValueNode:
        """The value-node for ``value``, created if absent; inherits the
        tree's subtree-indexing choice from its grandparent."""
        node = self.children.get(value)
        if node is None:
            node = ValueNode(value, self, indexed=self.parent.aggregate is not None)
            self.children[value] = node
        return node

    def __repr__(self) -> str:
        return f"AttributeNode({self.attribute}, values={len(self.children)})"
