"""The intentional name language (Section 2.1 of the paper).

Public surface:

- :class:`NameSpecifier` — an intentional name, a hierarchy of av-pairs.
- :class:`AVPair` — one attribute-value pair with dependent children.
- :func:`parse_name_specifier` — wire-format parser (depth-bounded).
- Value operators: exact match, wild-card ``*``, and range operators.
- :func:`encode_name` / :func:`decode_name` — the compact binary
  encoding of footnote 2 (self-contained or registry mode).
"""

from .avpair import AVPair, make_pair, validate_token
from .binary import (
    BinaryNameError,
    TokenRegistry,
    compression_ratio,
    decode_name,
    encode_name,
)
from .errors import (
    DuplicateAttributeError,
    InvalidTokenError,
    NameSyntaxError,
    NamingError,
    WildcardValueError,
    WireFormatError,
)
from .operators import (
    WILDCARD,
    LiteralMatcher,
    RangeMatcher,
    ValueMatcher,
    WildcardMatcher,
    classify_value,
    is_literal_value,
    is_operator_value,
    is_wildcard,
    parse_number,
)
from .parser import MAX_NAME_DEPTH, parse_name_specifier
from .specifier import DEFAULT_VSPACE, VSPACE_ATTRIBUTE, NameSpecifier

__all__ = [
    "AVPair",
    "BinaryNameError",
    "TokenRegistry",
    "compression_ratio",
    "decode_name",
    "encode_name",
    "DEFAULT_VSPACE",
    "DuplicateAttributeError",
    "InvalidTokenError",
    "LiteralMatcher",
    "NameSpecifier",
    "NameSyntaxError",
    "NamingError",
    "RangeMatcher",
    "VSPACE_ATTRIBUTE",
    "ValueMatcher",
    "WILDCARD",
    "WildcardMatcher",
    "MAX_NAME_DEPTH",
    "WildcardValueError",
    "WireFormatError",
    "classify_value",
    "is_literal_value",
    "is_operator_value",
    "is_wildcard",
    "make_pair",
    "parse_name_specifier",
    "parse_number",
    "validate_token",
]
