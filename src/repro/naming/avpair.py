"""Attribute-value pairs, the building block of name-specifiers.

An av-pair (Section 2.1) is an attribute (a category, e.g. ``city``)
bound to a value (the classification, e.g. ``washington``), with child
av-pairs that are only meaningful in the context of this pair. Children
with distinct attributes are *orthogonal*; a child whose meaning depends
on this pair is a *descendant* of it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .errors import DuplicateAttributeError, InvalidTokenError

#: Characters that cannot appear inside attribute or value tokens
#: because they are structural in the wire format.
RESERVED_CHARACTERS = frozenset("[]=")


def validate_token(token: str, kind: str) -> str:
    """Check that ``token`` is a legal attribute or value token.

    Tokens are free-form strings, but the wire format reserves
    ``[``, ``]`` and ``=`` and forbids embedded whitespace (whitespace is
    a token separator). The single exception: a *value* may begin with a
    range operator (``<=`` / ``>=``), whose ``=`` the parser also knows
    how to carry. Returns the token so calls can be inlined.
    """
    if not token:
        raise InvalidTokenError(f"empty {kind} token")
    body = token
    if kind == "value" and token[:2] in ("<=", ">="):
        body = token[2:]
    for ch in body:
        if ch in RESERVED_CHARACTERS or ch.isspace():
            raise InvalidTokenError(
                f"{kind} token {token!r} contains reserved character {ch!r}"
            )
    return token


class AVPair:
    """One attribute-value pair and its dependent children.

    The children are kept in a dict keyed by attribute, preserving
    insertion order while enforcing sibling-attribute orthogonality and
    giving O(1) child lookup during name-tree operations.
    """

    __slots__ = ("attribute", "value", "_children", "_key_cache", "_parent")

    def __init__(self, attribute: str, value: str) -> None:
        self.attribute = validate_token(attribute, "attribute")
        self.value = validate_token(value, "value")
        self._children: Dict[str, "AVPair"] = {}
        # Memoized canonical_key() plus the upward link that lets a
        # descendant mutation invalidate every ancestor's cache. An
        # av-pair belongs to at most one parent (pair or specifier) —
        # which the object model already implies: names are trees.
        self._key_cache: Optional[tuple] = None
        self._parent = None

    def _invalidate_key(self) -> None:
        # A cached ancestor implies every descendant is cached (the key
        # is built bottom-up), so stopping at the first already-clear
        # cache never strands a stale ancestor.
        node = self
        while node is not None and node._key_cache is not None:
            node._key_cache = None
            node = node._parent

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def add_child(self, child: "AVPair") -> "AVPair":
        """Attach ``child`` as a dependent av-pair; returns ``child``.

        Raises :class:`DuplicateAttributeError` when a sibling already
        classifies the same attribute.
        """
        if child.attribute in self._children:
            raise DuplicateAttributeError(
                f"sibling av-pair with attribute {child.attribute!r} "
                f"already present under {self.attribute}={self.value}"
            )
        self._children[child.attribute] = child
        child._parent = self
        self._invalidate_key()
        return child

    def add(self, attribute: str, value: str) -> "AVPair":
        """Create an av-pair and attach it; returns the new child."""
        return self.add_child(AVPair(attribute, value))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def children(self) -> Tuple["AVPair", ...]:
        """The dependent av-pairs, in insertion order."""
        return tuple(self._children.values())

    def child(self, attribute: str) -> Optional["AVPair"]:
        """The child av-pair classifying ``attribute``, or None."""
        return self._children.get(attribute)

    @property
    def is_leaf(self) -> bool:
        """True when this av-pair has no dependent children."""
        return not self._children

    def walk(self) -> Iterator["AVPair"]:
        """Yield this pair and every descendant, pre-order.

        Iterative (explicit stack): names built programmatically can be
        arbitrarily deep, and a nested-generator walk would hit the
        interpreter recursion limit a few hundred levels down.
        """
        stack = [self]
        pop = stack.pop
        extend = stack.extend
        while stack:
            pair = pop()
            yield pair
            children = pair._children
            if children:
                extend(list(children.values())[::-1])

    def depth(self) -> int:
        """Number of av-pair levels in the subtree rooted here (>= 1)."""
        deepest = 1
        stack = [(self, 1)]
        while stack:
            pair, level = stack.pop()
            if level > deepest:
                deepest = level
            below = level + 1
            for child in pair._children.values():
                stack.append((child, below))
        return deepest

    def count(self) -> int:
        """Total number of av-pairs in the subtree rooted here."""
        total = 0
        stack = [self]
        while stack:
            pair = stack.pop()
            total += 1
            stack.extend(pair._children.values())
        return total

    # ------------------------------------------------------------------
    # Structural equality and canonical ordering
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """A hashable key identifying this subtree up to sibling order.

        Cached: structural mutation (``add_child`` anywhere below)
        invalidates the cache up the parent chain, so repeated key
        computations — hashing, name-tree memo lookups, refresh
        comparisons — cost one attribute read instead of a tree walk.
        """
        cached = self._key_cache
        if cached is not None:
            return cached
        # Post-order over the uncached region: children's keys exist
        # before their parent's is assembled, without Python recursion
        # (deep programmatic names would otherwise blow the stack).
        pending: list = [self]
        order: list = []
        while pending:
            pair = pending.pop()
            if pair._key_cache is None:
                order.append(pair)
                pending.extend(pair._children.values())
        for pair in reversed(order):
            pair._key_cache = (
                pair.attribute,
                pair.value,
                tuple(sorted(c._key_cache for c in pair._children.values())),
            )
        return self._key_cache

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AVPair):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def copy(self) -> "AVPair":
        """A deep copy of this subtree (iterative, depth-safe)."""
        duplicate = AVPair(self.attribute, self.value)
        stack = [(self, duplicate)]
        while stack:
            source, target = stack.pop()
            for child in source._children.values():
                twin = AVPair(child.attribute, child.value)
                target.add_child(twin)
                stack.append((child, twin))
        return duplicate

    def __repr__(self) -> str:
        return f"AVPair({self.attribute}={self.value}, children={len(self._children)})"


def make_pair(attribute: str, value: str, *children: AVPair) -> AVPair:
    """Convenience constructor: an av-pair with pre-built children."""
    pair = AVPair(attribute, value)
    for child in children:
        pair.add_child(child)
    return pair
