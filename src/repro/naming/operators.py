"""Value-matching operators for name-specifier values.

Section 2.1 of the paper defines exact-value matching plus wild-card
matching (the ``*`` token), and notes that inequality operators
(``<``, ``>``, ``<=``, ``>=``) for range selection were being added.
This module implements all of them behind one small interface:
:func:`classify_value` maps a raw value token to a :class:`ValueMatcher`
and lookup code asks the matcher which concrete advertisement values it
selects.

Advertised values are always concrete literals; operators appear only in
queries. Range operators compare numerically when the advertised value
parses as a number and fall back to lexicographic comparison otherwise,
so ``room < 20`` behaves as users expect for numeric room labels while
still being total over free-form strings.
"""

from __future__ import annotations

from typing import Optional, Union

#: The wild-card token from the paper: matches every value.
WILDCARD = "*"

#: Range-operator prefixes, longest first so ``<=`` wins over ``<``.
_RANGE_OPERATORS = ("<=", ">=", "<", ">")


def parse_number(text: str) -> Optional[Union[int, float]]:
    """Return ``text`` as an int or float, or None if non-numeric."""
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return None


class ValueMatcher:
    """Decides whether a query value selects an advertised literal."""

    #: True when the matcher can select more than one concrete value and
    #: lookup must therefore scan an attribute-node's children (the
    #: wild-card path of LOOKUP-NAME) rather than hash to one value-node.
    is_multi = False

    def matches(self, advertised: str) -> bool:
        raise NotImplementedError


class LiteralMatcher(ValueMatcher):
    """Exact-value matching: the normal case."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def matches(self, advertised: str) -> bool:
        return advertised == self.value

    def __repr__(self) -> str:
        return f"LiteralMatcher({self.value!r})"


class WildcardMatcher(ValueMatcher):
    """The ``*`` token: matches every advertised value."""

    is_multi = True

    def matches(self, advertised: str) -> bool:
        return True

    def __repr__(self) -> str:
        return "WildcardMatcher()"


class RangeMatcher(ValueMatcher):
    """An inequality such as ``<20`` or ``>=5.5``.

    A numeric bound compares numerically and matches only numeric
    advertised values (``room >= 12`` should not select ``annex``); a
    non-numeric bound compares lexicographically against everything.
    """

    is_multi = True

    __slots__ = ("operator", "bound", "_numeric_bound")

    def __init__(self, operator: str, bound: str) -> None:
        if operator not in _RANGE_OPERATORS:
            raise ValueError(f"unknown range operator: {operator!r}")
        if not bound:
            raise ValueError("range operator requires a bound value")
        self.operator = operator
        self.bound = bound
        self._numeric_bound = parse_number(bound)

    def matches(self, advertised: str) -> bool:
        numeric = parse_number(advertised)
        if self._numeric_bound is not None:
            if numeric is None:
                return False  # numeric bound never selects non-numbers
            left, right = numeric, self._numeric_bound
        else:
            left, right = advertised, self.bound  # lexicographic bound
        if self.operator == "<":
            return left < right
        if self.operator == ">":
            return left > right
        if self.operator == "<=":
            return left <= right
        return left >= right

    def __repr__(self) -> str:
        return f"RangeMatcher({self.operator!r}, {self.bound!r})"


def is_wildcard(value: str) -> bool:
    """True if ``value`` is the wild-card token."""
    return value == WILDCARD


def is_operator_value(value: str) -> bool:
    """True if ``value`` is a wild-card or starts with a range operator.

    Every range operator begins with ``<`` or ``>``, so one character
    test suffices — this predicate runs once per av-pair on the
    advertisement ingestion path and must stay allocation-free.
    """
    if value == WILDCARD:
        return True
    return bool(value) and value[0] in "<>"


def is_literal_value(value: str) -> bool:
    """True when ``value`` selects exactly one advertised literal.

    The complement of :func:`is_operator_value`; LOOKUP-NAME uses it to
    take the hash-descent fast path without building a matcher object.
    """
    if value == WILDCARD:
        return False
    return not value or value[0] not in "<>"


def classify_value(value: str) -> ValueMatcher:
    """Map a raw value token to the matcher implementing its semantics."""
    if is_wildcard(value):
        return WildcardMatcher()
    for operator in _RANGE_OPERATORS:
        if value.startswith(operator):
            return RangeMatcher(operator, value[len(operator):])
    return LiteralMatcher(value)
