"""Exceptions raised by the intentional name language.

All naming-layer errors derive from :class:`NamingError` so callers can
catch one type at API boundaries while tests can assert on the precise
subclass.
"""

from __future__ import annotations


class NamingError(ValueError):
    """Base class for all intentional-name language errors."""


class NameSyntaxError(NamingError):
    """A wire-format name-specifier could not be parsed.

    Carries the character ``position`` at which parsing failed so tools
    (and tests) can point at the offending token.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class InvalidTokenError(NamingError):
    """An attribute or value token contains a reserved character.

    Tokens are free-form strings but may not contain whitespace or the
    structural characters ``[``, ``]`` and ``=`` (Section 2.1 of the
    paper permits arbitrary whitespace *between* tokens only).
    """


class DuplicateAttributeError(NamingError):
    """Two sibling av-pairs share the same attribute.

    Sibling attributes are orthogonal categories; a name-specifier that
    classifies the same object twice in one category is ambiguous.
    """


class WildcardValueError(NamingError):
    """A wildcard or range value was used where a literal is required.

    Advertisements must describe concrete services, so ``*`` and range
    operators are only legal in queries.
    """


class WireFormatError(NamingError):
    """A binary-encoded name is truncated, malformed or oversized.

    Everything a decoder can object to — a varint running past the
    buffer, a token index outside the table, unbalanced nesting, bytes
    after the terminator — raises this one type, so transport code can
    treat "undecodable frame" as a single condition and drop it without
    ever seeing a raw ``IndexError`` or ``UnicodeDecodeError``.
    """
