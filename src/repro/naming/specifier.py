"""Name-specifiers: the intentional names of INS (Section 2.1).

A :class:`NameSpecifier` is a hierarchy of av-pairs. Top-level av-pairs
are orthogonal to each other (e.g. ``city``, ``service`` and
``accessibility`` in the paper's Figure 2); each av-pair may carry
dependent children. Clients put name-specifiers in message headers to
identify message destinations and sources, and services advertise them
to describe what they provide.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from .avpair import AVPair
from .errors import DuplicateAttributeError, WildcardValueError
from .operators import is_operator_value

#: The well-known attribute an application uses to declare the virtual
#: space(s) its names belong to (Section 2.5).
VSPACE_ATTRIBUTE = "vspace"

#: The virtual space used when an application does not declare one.
DEFAULT_VSPACE = "default"

_DictValue = Union[str, Tuple[str, "NestedDict"]]
NestedDict = Mapping[str, _DictValue]


class NameSpecifier:
    """An intentional name: an ordered forest of orthogonal av-pairs."""

    __slots__ = ("_roots", "_key_cache", "_parent")

    def __init__(self, roots: Optional[List[AVPair]] = None) -> None:
        self._roots: Dict[str, AVPair] = {}
        # Memoized canonical_key(); root av-pairs point back here so a
        # mutation anywhere in the name invalidates it. A specifier is
        # never itself a child, so its _parent stays None (it exists
        # only to terminate AVPair._invalidate_key's upward walk).
        self._key_cache: Optional[tuple] = None
        self._parent = None
        for root in roots or []:
            self.add_pair(root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pair(self, pair: AVPair) -> AVPair:
        """Attach a top-level av-pair; returns it.

        Raises :class:`DuplicateAttributeError` if the attribute is
        already classified at the top level.
        """
        if pair.attribute in self._roots:
            raise DuplicateAttributeError(
                f"top-level av-pair with attribute {pair.attribute!r} "
                "already present"
            )
        self._roots[pair.attribute] = pair
        pair._parent = self
        self._key_cache = None
        return pair

    def add(self, attribute: str, value: str) -> AVPair:
        """Create and attach a top-level av-pair; returns it."""
        return self.add_pair(AVPair(attribute, value))

    @classmethod
    def from_dict(cls, spec: NestedDict) -> "NameSpecifier":
        """Build a name-specifier from a nested mapping.

        Each key is an attribute; each value is either the value string
        or a ``(value, children)`` tuple where ``children`` is another
        mapping of the same shape::

            NameSpecifier.from_dict({
                "service": ("camera", {"entity": "transmitter", "id": "a"}),
                "room": "510",
            })
        """
        name = cls()
        for attribute, described in spec.items():
            name.add_pair(cls._pair_from_dict(attribute, described))
        return name

    @staticmethod
    def _pair_from_dict(attribute: str, described: _DictValue) -> AVPair:
        if isinstance(described, str):
            return AVPair(attribute, described)
        value, children = described
        pair = AVPair(attribute, value)
        for child_attribute, child_described in children.items():
            pair.add_child(
                NameSpecifier._pair_from_dict(child_attribute, child_described)
            )
        return pair

    @classmethod
    def parse(cls, text: str) -> "NameSpecifier":
        """Parse the wire representation (Figure 3). See :mod:`.parser`."""
        from .parser import parse_name_specifier

        return parse_name_specifier(text)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def roots(self) -> Tuple[AVPair, ...]:
        """The top-level orthogonal av-pairs, in insertion order."""
        return tuple(self._roots.values())

    def root(self, attribute: str) -> Optional[AVPair]:
        """The top-level av-pair classifying ``attribute``, or None."""
        return self._roots.get(attribute)

    def walk(self) -> Iterator[AVPair]:
        """Yield every av-pair in the name, pre-order."""
        for pair in self._roots.values():
            yield from pair.walk()

    def count(self) -> int:
        """Total number of av-pairs in the name."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Maximum number of av-pair levels (the paper's ``d``); 0 if empty."""
        if not self._roots:
            return 0
        return max(pair.depth() for pair in self._roots.values())

    @property
    def is_empty(self) -> bool:
        """True for the empty name, which matches everything."""
        return not self._roots

    def is_concrete(self) -> bool:
        """True when no value is a wild-card or range operator.

        Only concrete names may be advertised; operators belong in
        queries (Section 2.2 advertisements describe actual services).
        Iterative, with the operator test inlined: this predicate runs
        once per name on the advertisement ingestion path.
        """
        stack = list(self._roots.values())
        while stack:
            pair = stack.pop()
            value = pair.value
            if value == "*" or (value and value[0] in "<>"):
                return False
            stack.extend(pair._children.values())
        return True

    def require_concrete(self) -> "NameSpecifier":
        """Raise :class:`WildcardValueError` unless concrete; returns self."""
        stack = list(self._roots.values())
        while stack:
            pair = stack.pop()
            if is_operator_value(pair.value):
                raise WildcardValueError(
                    f"advertisement value {pair.value!r} for attribute "
                    f"{pair.attribute!r} is not a concrete literal"
                )
            stack.extend(pair._children.values())
        return self

    def vspaces(self) -> Tuple[str, ...]:
        """The virtual spaces this name declares via the ``vspace``
        attribute, or ``(DEFAULT_VSPACE,)`` when it declares none.

        A name may belong to multiple vspaces by giving a child list,
        e.g. ``[vspace=camera-ne43]``; multiple vspace declarations are
        expressed as dependent children of the first (the top level only
        permits one ``vspace`` pair because siblings are orthogonal).
        """
        declared = self._roots.get(VSPACE_ATTRIBUTE)
        if declared is None:
            return (DEFAULT_VSPACE,)
        names = [declared.value]
        names.extend(
            pair.value for pair in declared.walk() if pair is not declared
        )
        return tuple(names)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_wire(self, pretty: bool = False) -> str:
        """Serialize to the bracketed wire representation (Figure 3).

        Iterative token emission into one list joined at the end: no
        per-subtree string concatenation (quadratic on deep names) and
        no recursion (deep names would blow the stack). Wire bytes are
        identical to the recursive formulation.
        """
        eq = " = " if pretty else "="
        out: List[str] = []
        append = out.append
        first_root = True
        # Stack items: an AVPair opens a bracket and schedules its
        # children; the two string sentinels emit themselves.
        for root in self._roots.values():
            if pretty and not first_root:
                append(" ")
            first_root = False
            stack: List[object] = [root]
            pop = stack.pop
            while stack:
                item = pop()
                if item.__class__ is str:
                    append(item)
                    continue
                append(f"[{item.attribute}{eq}{item.value}")
                stack.append("]")
                children = item._children
                if children:
                    if pretty:
                        for child in list(children.values())[::-1]:
                            stack.append(child)
                            stack.append(" ")
                    else:
                        stack.extend(list(children.values())[::-1])
        return "".join(out)

    def wire_size(self) -> int:
        """Length in bytes of the compact wire representation."""
        return len(self.to_wire().encode("utf-8"))

    # ------------------------------------------------------------------
    # Equality / hashing (structural, order-insensitive among siblings)
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """A hashable key identifying the name up to sibling order.

        Cached; any ``add_pair``/``add_child`` below this name clears
        the cache (see :meth:`AVPair.canonical_key`)."""
        cached = self._key_cache
        if cached is None:
            cached = tuple(
                sorted(p.canonical_key() for p in self._roots.values())
            )
            self._key_cache = cached
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NameSpecifier):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def copy(self) -> "NameSpecifier":
        """A deep copy of the name."""
        return NameSpecifier([pair.copy() for pair in self._roots.values()])

    def __repr__(self) -> str:
        return f"NameSpecifier({self.to_wire()!r})"

    def __str__(self) -> str:
        return self.to_wire()
