"""Compact binary encoding of name-specifiers (footnote 2).

The paper's wire format is human-readable strings, chosen for
debuggability "in the spirit of HTTP and NNTP"; footnote 2 notes that
"fixed length integers could be used just as easily if the bandwidth or
processing power required for handling names is a concern". This module
implements that option: tokens are interned into a per-message string
table and the tree structure is byte-coded, typically halving the size
of realistic names (the exact saving is measured in
``tests/naming/test_binary.py``).

Two modes:

- **self-contained** — a per-message token table; wins when tokens
  repeat within one name.
- **registry** — the footnote's actual suggestion: both endpoints share
  a :class:`TokenRegistry` (agreed out-of-band, e.g. per application or
  per vspace), and the message carries only integer indexes. Realistic
  names shrink to a third of the string form or better.

Layout (mode byte first)::

    0x01                                        -- self-contained
    varint   token_count
    token*   { varint length, utf-8 bytes }     -- each distinct token once
    node*    tree walk, one of:
               0x01 attr_index value_index      -- enter av-pair
               0x02                             -- leave av-pair
    0x00 terminator

    0x02                                        -- registry mode
    node*    (as above, indexes into the shared registry)
    0x00 terminator

Both directions are single-pass over flat buffers. The encoder walks
the av-pair forest with an explicit stack (a ``None`` entry marks a
pending LEAVE) and writes varints inline into one ``bytearray``; the
decoder reads varints against a bounds-checked cursor and slices token
bytes through a :class:`memoryview`, so no intermediate per-field
objects are built. Every way a frame can be undecodable — truncation,
a runaway varint, an out-of-range token index, unbalanced nesting,
bytes after the terminator, tokens that are not legal name tokens —
raises :class:`BinaryNameError`, a :class:`~.errors.WireFormatError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .avpair import AVPair
from .errors import NamingError, WireFormatError
from .parser import MAX_NAME_DEPTH
from .specifier import NameSpecifier

_ENTER = 0x01
_LEAVE = 0x02
_END = 0x00

_MODE_SELF_CONTAINED = 0x01
_MODE_REGISTRY = 0x02


class BinaryNameError(WireFormatError):
    """A compact-encoded name could not be decoded."""


class TokenRegistry:
    """A shared token <-> integer mapping (footnote 2's fixed integers).

    Both endpoints must hold the same registry contents; in a real
    deployment it would be distributed out-of-band (compiled into the
    application, or announced once per vspace). ``intern`` assigns ids
    deterministically in first-seen order, so two registries fed the
    same token stream agree.
    """

    def __init__(self) -> None:
        self._by_token: Dict[str, int] = {}
        self._by_index: List[str] = []

    def intern(self, token: str) -> int:
        index = self._by_token.get(token)
        if index is None:
            index = len(self._by_index)
            self._by_token[token] = index
            self._by_index.append(token)
        return index

    def token(self, index: int) -> str:
        if index >= len(self._by_index):
            raise BinaryNameError(f"token index {index} not in registry")
        return self._by_index[index]

    def preload(self, tokens) -> "TokenRegistry":
        for token in tokens:
            self.intern(token)
        return self

    def __len__(self) -> int:
        return len(self._by_index)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    size = len(data)
    while True:
        if offset >= size:
            raise BinaryNameError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 35:
            raise BinaryNameError("varint too long")


def encode_name(name: NameSpecifier, registry: "TokenRegistry" = None) -> bytes:
    """Serialize ``name``; with a ``registry``, emit indexes only.

    Depth-safe for programmatically-built names of any depth: the tree
    walk uses an explicit stack rather than recursion.
    """
    if registry is not None:
        interned = registry._by_token
        intern_new = registry.intern
        # Registry mode carries no token table, so the mode byte can
        # lead the single output buffer directly.
        body = bytearray([_MODE_REGISTRY])
    else:
        table: Dict[str, int] = {}
        interned = table
        intern_new = None
        body = bytearray()
    append = body.append

    for root in name._roots.values():
        # ``None`` marks a pending LEAVE for the pair pushed before it.
        stack: List[Optional[AVPair]] = [root]
        pop = stack.pop
        while stack:
            pair = pop()
            if pair is None:
                append(_LEAVE)
                continue
            append(_ENTER)
            for token in (pair.attribute, pair.value):
                index = interned.get(token)
                if index is None:
                    if intern_new is not None:
                        index = intern_new(token)
                    else:
                        index = len(table)
                        table[token] = index
                while index > 0x7F:
                    append((index & 0x7F) | 0x80)
                    index >>= 7
                append(index)
            stack.append(None)
            children = pair._children
            if children:
                stack.extend(list(children.values())[::-1])
    append(_END)

    if registry is not None:
        return bytes(body)
    out = bytearray([_MODE_SELF_CONTAINED])
    _write_varint(out, len(table))
    for token in table:  # dict preserves interning order
        encoded = token.encode("utf-8")
        _write_varint(out, len(encoded))
        out.extend(encoded)
    out.extend(body)
    return bytes(out)


def decode_name(
    data,
    registry: "TokenRegistry" = None,
    max_depth: Optional[int] = MAX_NAME_DEPTH,
) -> NameSpecifier:
    """Parse a name produced by :func:`encode_name`.

    Accepts any bytes-like buffer (``bytes``, ``bytearray`` or a
    ``memoryview`` over a larger frame) and never copies token bytes
    before UTF-8 decoding. Registry-mode messages require the same
    ``registry`` the sender used. ``max_depth`` bounds nesting exactly
    like the text parser; pass ``None`` to lift the bound for trusted
    deep names.

    Raises :class:`BinaryNameError` — never a raw ``IndexError`` or
    ``UnicodeDecodeError`` — for every malformed input, including
    trailing bytes after the terminator.
    """
    size = len(data)
    if not size:
        raise BinaryNameError("empty buffer")
    mode = data[0]
    offset = 1
    if mode == _MODE_REGISTRY:
        if registry is None:
            raise BinaryNameError("registry-mode name but no registry given")
        table = registry._by_index
    elif mode == _MODE_SELF_CONTAINED:
        count, offset = _read_varint(data, offset)
        # Each token costs at least one length byte, so a count beyond
        # the remaining buffer is malformed regardless of contents.
        if count > size - offset:
            raise BinaryNameError("token table larger than message")
        view = memoryview(data)
        table = []
        for _ in range(count):
            length, offset = _read_varint(data, offset)
            end = offset + length
            if end > size:
                raise BinaryNameError("truncated token table")
            try:
                table.append(str(view[offset:end], "utf-8"))
            except UnicodeDecodeError as error:
                raise BinaryNameError(f"bad token bytes: {error}") from error
            offset = end
    else:
        raise BinaryNameError(f"unknown encoding mode {mode:#x}")

    table_size = len(table)
    name = NameSpecifier()
    stack: List[AVPair] = []
    depth = 0
    while True:
        if offset >= size:
            raise BinaryNameError("missing terminator")
        opcode = data[offset]
        offset += 1
        if opcode == _ENTER:
            if max_depth is not None and depth >= max_depth:
                raise BinaryNameError(
                    f"name deeper than {max_depth} levels"
                )
            # Inline bounds-checked varint reads: the node list is the
            # hot region of every frame and per-field (value, offset)
            # tuples from _read_varint would dominate the allocations.
            attribute_index = 0
            shift = 0
            while True:
                if offset >= size:
                    raise BinaryNameError("truncated varint")
                byte = data[offset]
                offset += 1
                attribute_index |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
                if shift > 35:
                    raise BinaryNameError("varint too long")
            value_index = 0
            shift = 0
            while True:
                if offset >= size:
                    raise BinaryNameError("truncated varint")
                byte = data[offset]
                offset += 1
                value_index |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
                if shift > 35:
                    raise BinaryNameError("varint too long")
            if attribute_index >= table_size or value_index >= table_size:
                bad = max(attribute_index, value_index)
                raise BinaryNameError(f"token index {bad} out of range")
            try:
                pair = AVPair(table[attribute_index], table[value_index])
                if stack:
                    stack[-1].add_child(pair)
                else:
                    name.add_pair(pair)
            except NamingError as error:
                # Reserved characters inside a token, or duplicate
                # sibling attributes: the frame encodes an illegal name.
                raise BinaryNameError(f"illegal name in frame: {error}") from error
            stack.append(pair)
            depth += 1
        elif opcode == _LEAVE:
            if not stack:
                raise BinaryNameError("unbalanced av-pair nesting")
            stack.pop()
            depth -= 1
        elif opcode == _END:
            if stack:
                raise BinaryNameError("unbalanced av-pair nesting")
            if offset != size:
                raise BinaryNameError("trailing bytes after terminator")
            return name
        else:
            raise BinaryNameError(f"unknown opcode {opcode:#x}")


def compression_ratio(name: NameSpecifier, registry: "TokenRegistry" = None) -> float:
    """Binary size over string size; < 1 means the binary form wins.

    The empty name serializes to zero string bytes; its ratio is
    defined as 1.0 (neither form wins) rather than dividing by zero.
    """
    string_size = name.wire_size()
    if string_size == 0:
        return 1.0
    return len(encode_name(name, registry)) / string_size
