"""Compact binary encoding of name-specifiers (footnote 2).

The paper's wire format is human-readable strings, chosen for
debuggability "in the spirit of HTTP and NNTP"; footnote 2 notes that
"fixed length integers could be used just as easily if the bandwidth or
processing power required for handling names is a concern". This module
implements that option: tokens are interned into a per-message string
table and the tree structure is byte-coded, typically halving the size
of realistic names (the exact saving is measured in
``tests/naming/test_binary.py``).

Two modes:

- **self-contained** — a per-message token table; wins when tokens
  repeat within one name.
- **registry** — the footnote's actual suggestion: both endpoints share
  a :class:`TokenRegistry` (agreed out-of-band, e.g. per application or
  per vspace), and the message carries only integer indexes. Realistic
  names shrink to a third of the string form or better.

Layout (mode byte first)::

    0x01                                        -- self-contained
    varint   token_count
    token*   { varint length, utf-8 bytes }     -- each distinct token once
    node*    tree walk, one of:
               0x01 attr_index value_index      -- enter av-pair
               0x02                             -- leave av-pair
    0x00 terminator

    0x02                                        -- registry mode
    node*    (as above, indexes into the shared registry)
    0x00 terminator
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .avpair import AVPair
from .errors import NamingError
from .specifier import NameSpecifier

_ENTER = 0x01
_LEAVE = 0x02
_END = 0x00

_MODE_SELF_CONTAINED = 0x01
_MODE_REGISTRY = 0x02


class BinaryNameError(NamingError):
    """A compact-encoded name could not be decoded."""


class TokenRegistry:
    """A shared token <-> integer mapping (footnote 2's fixed integers).

    Both endpoints must hold the same registry contents; in a real
    deployment it would be distributed out-of-band (compiled into the
    application, or announced once per vspace). ``intern`` assigns ids
    deterministically in first-seen order, so two registries fed the
    same token stream agree.
    """

    def __init__(self) -> None:
        self._by_token: Dict[str, int] = {}
        self._by_index: List[str] = []

    def intern(self, token: str) -> int:
        index = self._by_token.get(token)
        if index is None:
            index = len(self._by_index)
            self._by_token[token] = index
            self._by_index.append(token)
        return index

    def token(self, index: int) -> str:
        if index >= len(self._by_index):
            raise BinaryNameError(f"token index {index} not in registry")
        return self._by_index[index]

    def preload(self, tokens) -> "TokenRegistry":
        for token in tokens:
            self.intern(token)
        return self

    def __len__(self) -> int:
        return len(self._by_index)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise BinaryNameError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 35:
            raise BinaryNameError("varint too long")


def encode_name(name: NameSpecifier, registry: "TokenRegistry" = None) -> bytes:
    """Serialize ``name``; with a ``registry``, emit indexes only."""
    if registry is not None:
        intern = registry.intern
    else:
        table: Dict[str, int] = {}

        def intern(token: str) -> int:
            index = table.get(token)
            if index is None:
                index = len(table)
                table[token] = index
            return index

    body = bytearray()

    def walk(pair: AVPair) -> None:
        body.append(_ENTER)
        _write_varint(body, intern(pair.attribute))
        _write_varint(body, intern(pair.value))
        for child in pair.children:
            walk(child)
        body.append(_LEAVE)

    for root in name.roots:
        walk(root)
    body.append(_END)

    if registry is not None:
        return bytes([_MODE_REGISTRY]) + bytes(body)
    out = bytearray([_MODE_SELF_CONTAINED])
    _write_varint(out, len(table))
    for token in table:  # dict preserves interning order
        encoded = token.encode("utf-8")
        _write_varint(out, len(encoded))
        out.extend(encoded)
    out.extend(body)
    return bytes(out)


def decode_name(data: bytes, registry: "TokenRegistry" = None) -> NameSpecifier:
    """Parse a name produced by :func:`encode_name`.

    Registry-mode messages require the same ``registry`` the sender
    used.
    """
    if not data:
        raise BinaryNameError("empty buffer")
    mode = data[0]
    offset = 1
    if mode == _MODE_REGISTRY:
        if registry is None:
            raise BinaryNameError("registry-mode name but no registry given")
        token = registry.token
    elif mode == _MODE_SELF_CONTAINED:
        count, offset = _read_varint(data, offset)
        tokens: List[str] = []
        for _ in range(count):
            length, offset = _read_varint(data, offset)
            if offset + length > len(data):
                raise BinaryNameError("truncated token table")
            try:
                tokens.append(data[offset:offset + length].decode("utf-8"))
            except UnicodeDecodeError as error:
                raise BinaryNameError(f"bad token bytes: {error}") from error
            offset += length

        def token(index: int) -> str:
            if index >= len(tokens):
                raise BinaryNameError(f"token index {index} out of range")
            return tokens[index]
    else:
        raise BinaryNameError(f"unknown encoding mode {mode:#x}")

    name = NameSpecifier()
    stack: List[AVPair] = []
    while True:
        if offset >= len(data):
            raise BinaryNameError("missing terminator")
        opcode = data[offset]
        offset += 1
        if opcode == _END:
            if stack:
                raise BinaryNameError("unbalanced av-pair nesting")
            if offset != len(data):
                raise BinaryNameError("trailing bytes after terminator")
            return name
        if opcode == _ENTER:
            from .parser import MAX_NAME_DEPTH

            if len(stack) >= MAX_NAME_DEPTH:
                raise BinaryNameError(
                    f"name deeper than {MAX_NAME_DEPTH} levels"
                )
            attribute_index, offset = _read_varint(data, offset)
            value_index, offset = _read_varint(data, offset)
            pair = AVPair(token(attribute_index), token(value_index))
            if stack:
                stack[-1].add_child(pair)
            else:
                name.add_pair(pair)
            stack.append(pair)
        elif opcode == _LEAVE:
            if not stack:
                raise BinaryNameError("unbalanced av-pair nesting")
            stack.pop()
        else:
            raise BinaryNameError(f"unknown opcode {opcode:#x}")


def compression_ratio(name: NameSpecifier, registry: "TokenRegistry" = None) -> float:
    """Binary size over string size; < 1 means the binary form wins."""
    string_size = name.wire_size()
    if string_size == 0:
        return 1.0
    return len(encode_name(name, registry)) / string_size
