"""Parser for the wire representation of name-specifiers (Figure 3).

The grammar, with arbitrary whitespace permitted between tokens::

    specifier := group*
    group     := '[' TOKEN ('=' TOKEN)? group* ']'

A group without an explicit ``= value`` (the paper's Floorplan sends
``[location]`` to the Locator service) is parsed as the wild-card value,
since omitted information corresponds to wild-cards throughout INS.
"""

from __future__ import annotations



from .avpair import AVPair, RESERVED_CHARACTERS
from .errors import NameSyntaxError
from .operators import WILDCARD
from .specifier import NameSpecifier

#: Maximum av-pair nesting accepted from the wire. The paper observes
#: that depth "will be near-constant and relatively small" (Section
#: 5.1.1); bounding it keeps adversarially deep names from exhausting
#: the recursive parser, graft and lookup paths.
MAX_NAME_DEPTH = 64


class _Tokenizer:
    """Splits wire text into ``[``, ``]``, ``=`` and string tokens."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def _skip_whitespace(self) -> None:
        while self._position < len(self._text) and self._text[self._position].isspace():
            self._position += 1

    def peek(self) -> str:
        """The next token without consuming it; '' at end of input."""
        saved = self._position
        token = self.next()
        self._position = saved
        return token

    def next(self) -> str:
        """Consume and return the next token; '' at end of input."""
        self._skip_whitespace()
        if self._position >= len(self._text):
            return ""
        ch = self._text[self._position]
        if ch in RESERVED_CHARACTERS:
            self._position += 1
            return ch
        start = self._position
        while self._position < len(self._text):
            ch = self._text[self._position]
            if ch in RESERVED_CHARACTERS or ch.isspace():
                break
            self._position += 1
        token = self._text[start:self._position]
        # Range-operator exception: a value like ">=12" embeds the
        # otherwise-reserved '=' in its operator. Fold it back in when
        # the token so far is exactly '<' or '>'.
        if (
            token in ("<", ">")
            and self._position < len(self._text)
            and self._text[self._position] == "="
        ):
            self._position += 1
            while self._position < len(self._text):
                ch = self._text[self._position]
                if ch in RESERVED_CHARACTERS or ch.isspace():
                    break
                self._position += 1
            token = self._text[start:self._position]
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise NameSyntaxError(
                f"expected {token!r}, found {found!r}", self._position
            )


def parse_name_specifier(text: str) -> NameSpecifier:
    """Parse ``text`` into a :class:`NameSpecifier`.

    Raises :class:`NameSyntaxError` on malformed input, including
    trailing garbage after the final group.
    """
    tokenizer = _Tokenizer(text)
    name = NameSpecifier()
    while tokenizer.peek() == "[":
        name.add_pair(_parse_group(tokenizer, depth=1))
    trailing = tokenizer.next()
    if trailing:
        raise NameSyntaxError(
            f"unexpected token {trailing!r} after name-specifier",
            tokenizer.position,
        )
    return name


def _parse_group(tokenizer: _Tokenizer, depth: int) -> AVPair:
    if depth > MAX_NAME_DEPTH:
        raise NameSyntaxError(
            f"name-specifier deeper than {MAX_NAME_DEPTH} levels",
            tokenizer.position,
        )
    tokenizer.expect("[")
    attribute = tokenizer.next()
    if attribute in ("", "[", "]", "="):
        raise NameSyntaxError(
            f"expected attribute token, found {attribute!r}", tokenizer.position
        )
    if tokenizer.peek() == "=":
        tokenizer.expect("=")
        value = tokenizer.next()
        if value in ("", "[", "]", "="):
            raise NameSyntaxError(
                f"expected value token, found {value!r}", tokenizer.position
            )
    else:
        value = WILDCARD  # attribute-only group: omitted value is a wild-card
    pair = AVPair(attribute, value)
    while tokenizer.peek() == "[":
        pair.add_child(_parse_group(tokenizer, depth + 1))
    tokenizer.expect("]")
    return pair
