"""Messages exchanged with the Domain Space Resolver (Section 2.4).

The DSR is the well-known entity that maintains the lists of active and
candidate INRs and, with virtual spaces (Section 2.5), the mapping from
a vspace to the resolvers routing it.

These are *wire* definitions, so they live in the ``message`` layer:
both the resolver (an INR registers, heartbeats, claims candidates) and
the overlay's DSR itself speak this protocol, and keeping it below both
is what makes the resolver -> overlay layer direction acyclic.
``repro.overlay.protocol`` re-exports everything for compatibility.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Tuple

BASE_OVERHEAD = 28

_REQUEST_IDS = itertools.count(1)


def _fresh_request_id() -> int:
    return next(_REQUEST_IDS)


@dataclass
class DsrRegisterActive:
    """An INR joining the active list, declaring the vspaces it routes."""

    address: str
    vspaces: Tuple[str, ...]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 16 * len(self.vspaces)


@dataclass
class DsrRegisterCandidate:
    """A node volunteering to host a spawned INR later."""

    address: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class DsrDeregister:
    """An INR leaving the active list (self-termination or shutdown)."""

    address: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class DsrHeartbeat:
    """Soft-state refresh of an active INR's registration."""

    address: str
    vspaces: Tuple[str, ...]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 16 * len(self.vspaces)


@dataclass
class DsrListRequest:
    """Query for the currently active and candidate INRs."""

    reply_to: str
    reply_port: int
    request_id: int = field(default_factory=_fresh_request_id)

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class DsrListResponse:
    """Active INRs (in activation order — the paper's linear order that
    makes the join topology a tree) and candidate nodes."""

    request_id: int
    active: Tuple[str, ...]
    candidates: Tuple[str, ...]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 16 * (len(self.active) + len(self.candidates))


@dataclass
class DsrVspaceRequest:
    """Which resolver(s) route this virtual space?"""

    vspace: str
    reply_to: str
    reply_port: int
    request_id: int = field(default_factory=_fresh_request_id)

    def wire_size(self) -> int:
        return BASE_OVERHEAD + len(self.vspace)


@dataclass
class DsrVspaceResponse:
    request_id: int
    vspace: str
    resolvers: Tuple[str, ...]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 16 * len(self.resolvers)


@dataclass
class DsrClaimCandidate:
    """Reserve a candidate node to spawn an INR on (Section 2.5).

    The DSR removes the granted candidate from its list so two loaded
    INRs cannot spawn onto the same node.
    """

    requester: str
    reply_to: str
    reply_port: int
    request_id: int = field(default_factory=_fresh_request_id)

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class DsrClaimResponse:
    """The granted candidate address, or empty when none are left."""

    request_id: int
    candidate: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD + len(self.candidate)


@dataclass
class DsrReplicate:
    """A state-changing DSR message forwarded to replica peers.

    The paper notes the DSR "may be replicated for fault-tolerance";
    replicas apply the inner message without re-forwarding it (no
    gossip loops). Registrations are soft state on every replica, so a
    missed replication heals at the next heartbeat.
    """

    origin: str
    inner: object

    def wire_size(self) -> int:
        sizer = getattr(self.inner, "wire_size", None)
        return BASE_OVERHEAD + (int(sizer()) if callable(sizer) else 0)


__all__ = [
    "DsrClaimCandidate",
    "DsrReplicate",
    "DsrClaimResponse",
    "DsrDeregister",
    "DsrHeartbeat",
    "DsrListRequest",
    "DsrListResponse",
    "DsrRegisterActive",
    "DsrRegisterCandidate",
    "DsrVspaceRequest",
    "DsrVspaceResponse",
]
