"""Whole INS packets: header + name-specifiers + opaque data.

:class:`InsMessage` is the application-visible object; ``encode`` lays
it out exactly as Figure 10 describes (fixed header, then the two
wire-format name-specifiers at the recorded offsets, then data) and
``decode`` reverses it. INRs never touch the data section — the offsets
exist precisely so the forwarding agent can skip it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..naming import NameSpecifier
from ..obs import TRACE_CONTEXT_SIZE, TraceContext
from .header import (
    DEFAULT_HOP_LIMIT,
    HEADER_SIZE,
    INS_VERSION,
    Binding,
    Delivery,
    Header,
    HeaderError,
)


@dataclass
class InsMessage:
    """One INS data message.

    ``source`` identifies the sender intentionally (it is how replies
    come back, e.g. Camera transmitters invert source and destination);
    ``destination`` is the intentional name being resolved. ``data`` is
    opaque application payload.
    """

    destination: NameSpecifier
    source: NameSpecifier = field(default_factory=NameSpecifier)
    data: bytes = b""
    binding: Binding = Binding.LATE
    delivery: Delivery = Delivery.ANYCAST
    hop_limit: int = DEFAULT_HOP_LIMIT
    cache_lifetime: int = 0
    #: Caching extension (Section 3.2): True marks a request willing to
    #: be answered from an INR packet cache; ``cache_lifetime`` > 0
    #: marks a response whose data INRs may store.
    accept_cached: bool = False
    #: Tracing extension (PROTOCOL.md §9): the causal context this
    #: message carries across hops. ``None`` keeps the wire layout
    #: byte-identical to the untraced format.
    trace: Optional[TraceContext] = None

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the Figure 10 packet layout.

        Single-buffer: the exact packet size is known up front, so the
        header is packed in place and the name/data sections are slice-
        assigned into one ``bytearray`` — no intermediate concatenations.
        """
        source_bytes = self.source.to_wire().encode("utf-8")
        destination_bytes = self.destination.to_wire().encode("utf-8")
        source_offset = HEADER_SIZE + (
            TRACE_CONTEXT_SIZE if self.trace is not None else 0
        )
        destination_offset = source_offset + len(source_bytes)
        data_offset = destination_offset + len(destination_bytes)
        header = Header(
            version=INS_VERSION,
            binding=self.binding,
            delivery=self.delivery,
            source_offset=source_offset,
            destination_offset=destination_offset,
            data_offset=data_offset,
            hop_limit=self.hop_limit,
            cache_lifetime=self.cache_lifetime,
            accept_cached=self.accept_cached,
            trace=self.trace,
        )
        out = bytearray(data_offset + len(self.data))
        header.pack_into(out, 0)
        out[source_offset:destination_offset] = source_bytes
        out[destination_offset:data_offset] = destination_bytes
        out[data_offset:] = self.data
        return bytes(out)

    @classmethod
    def decode(cls, packet) -> "InsMessage":
        """Parse a packet produced by :meth:`encode`.

        Accepts any bytes-like buffer; the name-specifier sections are
        UTF-8-decoded straight out of a ``memoryview``, so no sliced
        ``bytes`` copies are made before parsing.
        """
        header = Header.unpack(packet)
        view = memoryview(packet)
        source_text = str(
            view[header.source_offset:header.destination_offset], "utf-8"
        )
        destination_text = str(
            view[header.destination_offset:header.data_offset], "utf-8"
        )
        if not destination_text:
            raise HeaderError("packet has an empty destination name-specifier")
        return cls(
            destination=NameSpecifier.parse(destination_text),
            source=NameSpecifier.parse(source_text),
            data=bytes(view[header.data_offset:]),
            binding=header.binding,
            delivery=header.delivery,
            hop_limit=header.hop_limit,
            cache_lifetime=header.cache_lifetime,
            accept_cached=header.accept_cached,
            trace=header.trace,
        )

    def wire_size(self) -> int:
        """Size in bytes of the encoded packet (for link accounting)."""
        return (
            HEADER_SIZE
            + (TRACE_CONTEXT_SIZE if self.trace is not None else 0)
            + len(self.source.to_wire().encode("utf-8"))
            + len(self.destination.to_wire().encode("utf-8"))
            + len(self.data)
        )

    # ------------------------------------------------------------------
    # Forwarding helpers
    # ------------------------------------------------------------------
    def hop_decremented(self) -> "InsMessage":
        """A copy with the hop limit reduced by one (overlay forwarding).

        Raises ValueError at zero: the caller must drop the message
        instead of forwarding it.
        """
        if self.hop_limit <= 0:
            raise ValueError("hop limit exhausted")
        return replace(self, hop_limit=self.hop_limit - 1)

    def reply_template(self) -> "InsMessage":
        """A message skeleton addressed back at this message's source.

        Source and destination are inverted, exactly how the Camera
        transmitter answers a receiver (Section 3.2).
        """
        return InsMessage(
            destination=self.source.copy(),
            source=self.destination.copy(),
            binding=self.binding,
            delivery=Delivery.ANYCAST,
            hop_limit=DEFAULT_HOP_LIMIT,
        )

    @property
    def wants_caching(self) -> bool:
        """True when INRs may cache this packet's data (Section 3.2)."""
        return self.cache_lifetime > 0
