"""The INS packet format (Section 4, Figure 10), DSR wire messages and
the custody-transfer handoff."""

from .custody import CustodyRecord, CustodyTransfer
from .dsr import (
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrReplicate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)
from .header import (
    DEFAULT_HOP_LIMIT,
    HEADER_SIZE,
    INS_VERSION,
    Binding,
    Delivery,
    Header,
    HeaderError,
)
from .packet import InsMessage

__all__ = [
    "Binding",
    "CustodyRecord",
    "CustodyTransfer",
    "DEFAULT_HOP_LIMIT",
    "Delivery",
    "DsrClaimCandidate",
    "DsrClaimResponse",
    "DsrDeregister",
    "DsrHeartbeat",
    "DsrListRequest",
    "DsrListResponse",
    "DsrRegisterActive",
    "DsrRegisterCandidate",
    "DsrReplicate",
    "DsrVspaceRequest",
    "DsrVspaceResponse",
    "HEADER_SIZE",
    "Header",
    "HeaderError",
    "INS_VERSION",
    "InsMessage",
]
