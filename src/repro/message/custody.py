"""CUSTODY-TRANSFER: migrating held payloads between resolvers.

Wire definitions for custody handoff (PROTOCOL.md §10). A resolver
that leaves the overlay deliberately — load-balancing self-termination,
an operator shutdown — must not take the payloads it holds custody of
down with it; it packages its custody store into one CUSTODY-TRANSFER
and hands it to a surviving neighbor. Like the DSR messages, these are
wire-layer types: both the resolver and the chaos harness speak them,
so they live in ``message`` below both.

Each transferred record carries the full encoded INS packet plus the
custody metadata the receiver needs to re-admit it faithfully: the
*absolute* expiry deadline (a handoff must not reset the payload's TTL
clock), the priority tier, and the custody hop count. The receiver
re-runs normal admission, so its own capacity policy — not the
sender's — decides what survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

BASE_OVERHEAD = 28

#: Metadata bytes per transferred record beyond the raw packet itself:
#: deadline (8), priority (2), transfers (2) and vspace-length framing.
PER_RECORD_OVERHEAD = 16


@dataclass(frozen=True)
class CustodyRecord:
    """One payload on the wire inside a CUSTODY-TRANSFER.

    ``raw`` is the encoded INS packet exactly as the sender held it
    (names, data, any trace context); ``deadline`` is the absolute
    virtual time at which custody lapses, carried unchanged across any
    number of handoffs.
    """

    raw: bytes
    vspace: str
    deadline: float
    priority: int
    transfers: int

    def wire_size(self) -> int:
        return PER_RECORD_OVERHEAD + len(self.vspace) + len(self.raw)


@dataclass
class CustodyTransfer:
    """A batch of payloads changing custodian (PROTOCOL.md §10).

    Sent over the inter-INR control transport — the reliable channel
    when the domain runs reliable-delta updates, a raw datagram
    otherwise. Handoff at termination is inherently best-effort: the
    sender is about to stop and cannot retransmit past its own death.
    """

    sender: str
    records: Tuple[CustodyRecord, ...]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + sum(record.wire_size() for record in self.records)


__all__ = ["CustodyRecord", "CustodyTransfer", "PER_RECORD_OVERHEAD"]
