"""DELEGATE-*: the two-phase vspace handoff wire protocol.

Wire definitions for crash-safe virtual-space delegation (PROTOCOL.md
§11). The paper's §2.5 cure for update overload — handing a virtual
space to a freshly spawned INR — becomes a two-phase handoff here:
OFFER → ACCEPT → TRANSFER* → COMMIT, with ABORT on timeout or crash.
Like the DSR and custody messages, these are wire-layer types: the
resolver speaks them and the chaos harness inspects them, so they live
in ``message`` below both.

Every message carries a **handoff id**: a 32-bit fence composed of the
donor's restart incarnation (high 16 bits) and a per-incarnation
sequence number (low 16 bits). Ids are strictly monotonic per donor
*across crashes*, which is what makes the fencing sound: a recipient
remembers the outcome of every settled handoff id and the next id it
will accept, so a stale retransmission — a duplicate OFFER after an
abort, a delayed TRANSFER after a commit — can never resurrect a
completed or aborted handoff (it is answered with the settled outcome,
or dropped and counted).

Unlike the other control dataclasses, these messages have a real byte
codec (``encode()`` / :func:`decode_delegation`): the handoff moves
whole name-trees between processes that may crash mid-stream, so the
frames are built to be fuzzed — every way a frame can be undecodable
raises :class:`DelegationWireError`, a :class:`ValueError`, never an
IndexError/KeyError/struct.error escaping to the event loop. Name
specifiers travel in the compact binary form (``naming.binary``,
footnote 2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from ..naming import NameSpecifier
from ..naming.binary import decode_name, encode_name

#: Framing overhead accounted by ``wire_size`` for the fixed header.
BASE_OVERHEAD = 28

#: Protocol version emitted by this implementation.
DELEGATION_VERSION = 1

#: First byte of every delegation frame.
_MAGIC = 0xD6

_KIND_OFFER = 1
_KIND_ACCEPT = 2
_KIND_TRANSFER = 3
_KIND_COMMIT = 4
_KIND_ABORT = 5

#: magic u8, kind u8, version u8, reserved u8, handoff_id u32.
_FIXED = struct.Struct("!BBBBI")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I32 = struct.Struct("!i")
_F64 = struct.Struct("!d")

#: Hard cap on records per TRANSFER frame; a decoded count beyond this
#: is a malformed frame, not a huge allocation.
MAX_RECORDS_PER_TRANSFER = 4096
_MAX_ENDPOINTS = 255

#: ACCEPT's ``ack_seq`` when it acknowledges the OFFER itself (no
#: TRANSFER chunk has been received yet).
OFFER_ACCEPTED = -1


class DelegationWireError(ValueError):
    """A delegation frame is malformed or inconsistent."""


def compose_handoff_id(incarnation: int, sequence: int) -> int:
    """Build the 32-bit fence: restart incarnation << 16 | sequence.

    Monotonic per donor even across crashes — a restarted donor's first
    handoff id is strictly greater than anything its previous
    incarnation ever issued, so a recipient's fence never confuses the
    two.
    """
    if not 0 <= incarnation <= 0xFFFF:
        raise DelegationWireError(f"incarnation out of range: {incarnation}")
    if not 0 <= sequence <= 0xFFFF:
        raise DelegationWireError(f"sequence out of range: {sequence}")
    return (incarnation << 16) | sequence


# ----------------------------------------------------------------------
# Encode/decode primitives (bounds-checked cursor over a memoryview)
# ----------------------------------------------------------------------
def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise DelegationWireError(f"string too long for frame: {len(data)}")
    out += _U16.pack(len(data))
    out += data


def _read(data, offset: int, count: int) -> int:
    """Bounds check: ``count`` bytes must exist at ``offset``."""
    if offset + count > len(data):
        raise DelegationWireError(
            f"frame truncated: need {count} bytes at {offset}, "
            f"have {len(data) - offset}"
        )
    return offset + count


def _read_str(data, offset: int) -> Tuple[str, int]:
    end = _read(data, offset, _U16.size)
    (length,) = _U16.unpack_from(data, offset)
    end = _read(data, end, length)
    try:
        text = bytes(data[end - length:end]).decode("utf-8")
    except UnicodeDecodeError as error:
        raise DelegationWireError(f"bad utf-8 in frame: {error}") from error
    return text, end


def _read_f64(data, offset: int) -> Tuple[float, int]:
    end = _read(data, offset, _F64.size)
    (value,) = _F64.unpack_from(data, offset)
    return value, end


# ----------------------------------------------------------------------
# The transferred record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DelegateRecord:
    """One name-record inside a TRANSFER frame.

    Carries everything the recipient needs to install the name in its
    staging tree: the compact-encoded specifier, the announcer
    identity, the early-binding endpoints, both metrics, and the
    *remaining* soft-state lifetime (seconds) — the handoff must not
    grant a record more life than the donor would have.
    """

    name: NameSpecifier
    announcer_host: str
    announcer_startup: float
    endpoints: Tuple[Tuple[str, int, str], ...]  # (host, port, transport)
    anycast_metric: float
    route_metric: float
    lifetime: float

    def encode_into(self, out: bytearray) -> None:
        blob = encode_name(self.name)
        out += _U32.pack(len(blob))
        out += blob
        _write_str(out, self.announcer_host)
        out += _F64.pack(self.announcer_startup)
        if len(self.endpoints) > _MAX_ENDPOINTS:
            raise DelegationWireError(
                f"too many endpoints: {len(self.endpoints)}"
            )
        out.append(len(self.endpoints))
        for host, port, transport in self.endpoints:
            _write_str(out, host)
            out += _U16.pack(port)
            _write_str(out, transport)
        out += _F64.pack(self.anycast_metric)
        out += _F64.pack(self.route_metric)
        out += _F64.pack(self.lifetime)

    @classmethod
    def decode_from(cls, data, offset: int) -> Tuple["DelegateRecord", int]:
        end = _read(data, offset, _U32.size)
        (blob_length,) = _U32.unpack_from(data, offset)
        end = _read(data, end, blob_length)
        try:
            name = decode_name(bytes(data[end - blob_length:end]))
        except ValueError as error:  # BinaryNameError and kin
            raise DelegationWireError(f"bad name blob: {error}") from error
        host, end = _read_str(data, end)
        startup, end = _read_f64(data, end)
        endpoint_end = _read(data, end, 1)
        endpoint_count = data[end]
        end = endpoint_end
        endpoints = []
        for _ in range(endpoint_count):
            endpoint_host, end = _read_str(data, end)
            port_end = _read(data, end, _U16.size)
            (port,) = _U16.unpack_from(data, end)
            end = port_end
            transport, end = _read_str(data, end)
            endpoints.append((endpoint_host, port, transport))
        anycast_metric, end = _read_f64(data, end)
        route_metric, end = _read_f64(data, end)
        lifetime, end = _read_f64(data, end)
        return (
            cls(
                name=name,
                announcer_host=host,
                announcer_startup=startup,
                endpoints=tuple(endpoints),
                anycast_metric=anycast_metric,
                route_metric=route_metric,
                lifetime=lifetime,
            ),
            end,
        )


# ----------------------------------------------------------------------
# The five handoff messages
# ----------------------------------------------------------------------
def _encode_fixed(kind: int, handoff_id: int) -> bytearray:
    if not 0 <= handoff_id <= 0xFFFFFFFF:
        raise DelegationWireError(f"handoff id out of range: {handoff_id}")
    return bytearray(_FIXED.pack(_MAGIC, kind, DELEGATION_VERSION, 0, handoff_id))


class _DelegationMessage:
    """Shared surface: ``encode()`` plus the ``wire_size`` hook the
    simulated network uses to charge transmission time."""

    def encode(self) -> bytes:
        raise NotImplementedError

    def wire_size(self) -> int:
        return BASE_OVERHEAD + len(self.encode()) - _FIXED.size


@dataclass(frozen=True)
class DelegateOffer(_DelegationMessage):
    """Donor → recipient: propose taking over ``vspace``.

    ``total_records`` sizes the transfer up front so the recipient can
    refuse an offer it cannot hold before any state moves.
    """

    sender: str
    handoff_id: int
    vspace: str
    total_records: int

    def encode(self) -> bytes:
        out = _encode_fixed(_KIND_OFFER, self.handoff_id)
        _write_str(out, self.sender)
        _write_str(out, self.vspace)
        out += _U32.pack(self.total_records)
        return bytes(out)

    @classmethod
    def _decode_body(cls, data, offset: int, handoff_id: int) -> "DelegateOffer":
        sender, offset = _read_str(data, offset)
        vspace, offset = _read_str(data, offset)
        end = _read(data, offset, _U32.size)
        (total,) = _U32.unpack_from(data, offset)
        _expect_end(data, end)
        return cls(sender=sender, handoff_id=handoff_id, vspace=vspace,
                   total_records=total)


@dataclass(frozen=True)
class DelegateAccept(_DelegationMessage):
    """Recipient → donor: accept the offer, or acknowledge a chunk.

    ``ack_seq`` is :data:`OFFER_ACCEPTED` (-1) when accepting the OFFER
    itself, else the sequence number of the highest TRANSFER chunk
    applied — the donor's stop-and-wait transfer advances on it.
    """

    sender: str
    handoff_id: int
    ack_seq: int = OFFER_ACCEPTED

    def encode(self) -> bytes:
        out = _encode_fixed(_KIND_ACCEPT, self.handoff_id)
        _write_str(out, self.sender)
        out += _I32.pack(self.ack_seq)
        return bytes(out)

    @classmethod
    def _decode_body(cls, data, offset: int, handoff_id: int) -> "DelegateAccept":
        sender, offset = _read_str(data, offset)
        end = _read(data, offset, _I32.size)
        (ack_seq,) = _I32.unpack_from(data, offset)
        _expect_end(data, end)
        return cls(sender=sender, handoff_id=handoff_id, ack_seq=ack_seq)


@dataclass(frozen=True)
class DelegateTransfer(_DelegationMessage):
    """Donor → recipient: one stop-and-wait chunk of name-records.

    ``seq`` starts at 0 and increments per chunk; ``final`` marks the
    last chunk, after which the recipient adopts the vspace and sends
    COMMIT. A chunk whose ``seq`` was already applied is re-acked and
    otherwise ignored (duplicate), and one beyond the expected sequence
    is dropped — the donor never sends chunk n+1 before n is acked.
    """

    sender: str
    handoff_id: int
    vspace: str
    seq: int
    final: bool
    records: Tuple[DelegateRecord, ...]

    def encode(self) -> bytes:
        out = _encode_fixed(_KIND_TRANSFER, self.handoff_id)
        _write_str(out, self.sender)
        _write_str(out, self.vspace)
        out += _U32.pack(self.seq)
        out.append(1 if self.final else 0)
        if len(self.records) > MAX_RECORDS_PER_TRANSFER:
            raise DelegationWireError(
                f"too many records in one transfer: {len(self.records)}"
            )
        out += _U16.pack(len(self.records))
        for record in self.records:
            record.encode_into(out)
        return bytes(out)

    @classmethod
    def _decode_body(cls, data, offset: int, handoff_id: int) -> "DelegateTransfer":
        sender, offset = _read_str(data, offset)
        vspace, offset = _read_str(data, offset)
        end = _read(data, offset, _U32.size)
        (seq,) = _U32.unpack_from(data, offset)
        offset = end
        end = _read(data, offset, 1)
        final_flag = data[offset]
        if final_flag not in (0, 1):
            raise DelegationWireError(f"bad final flag: {final_flag}")
        offset = end
        end = _read(data, offset, _U16.size)
        (count,) = _U16.unpack_from(data, offset)
        if count > MAX_RECORDS_PER_TRANSFER:
            raise DelegationWireError(f"record count too large: {count}")
        offset = end
        records = []
        for _ in range(count):
            record, offset = DelegateRecord.decode_from(data, offset)
            records.append(record)
        _expect_end(data, offset)
        return cls(
            sender=sender,
            handoff_id=handoff_id,
            vspace=vspace,
            seq=seq,
            final=bool(final_flag),
            records=tuple(records),
        )


@dataclass(frozen=True)
class DelegateCommit(_DelegationMessage):
    """Recipient → donor: the vspace is adopted; donor may let go.

    Also sent donor → recipient as the commit echo that stops the
    recipient's COMMIT retransmission — the direction is disambiguated
    by which side holds state for the handoff id. ``vspace`` rides
    along so a donor that crashed after finalizing (and so remembers
    nothing about the id) can still answer a retransmitted COMMIT
    idempotently: not routing the vspace ⇒ echo, routing it ⇒ abort.
    """

    sender: str
    handoff_id: int
    vspace: str

    def encode(self) -> bytes:
        out = _encode_fixed(_KIND_COMMIT, self.handoff_id)
        _write_str(out, self.sender)
        _write_str(out, self.vspace)
        return bytes(out)

    @classmethod
    def _decode_body(cls, data, offset: int, handoff_id: int) -> "DelegateCommit":
        sender, offset = _read_str(data, offset)
        vspace, offset = _read_str(data, offset)
        _expect_end(data, offset)
        return cls(sender=sender, handoff_id=handoff_id, vspace=vspace)


@dataclass(frozen=True)
class DelegateAbort(_DelegationMessage):
    """Either direction: the handoff is dead; roll back to the donor.

    An ABORT for a handoff the recipient already committed triggers
    rollback (un-adopt): the donor only ever sends ABORT for an id it
    never finalized, so donor authority is always safe to restore —
    this is how the donor-crashed-before-COMMIT race converges to
    exactly one authoritative resolver.
    """

    sender: str
    handoff_id: int
    vspace: str
    reason: str

    def encode(self) -> bytes:
        out = _encode_fixed(_KIND_ABORT, self.handoff_id)
        _write_str(out, self.sender)
        _write_str(out, self.vspace)
        _write_str(out, self.reason)
        return bytes(out)

    @classmethod
    def _decode_body(cls, data, offset: int, handoff_id: int) -> "DelegateAbort":
        sender, offset = _read_str(data, offset)
        vspace, offset = _read_str(data, offset)
        reason, offset = _read_str(data, offset)
        _expect_end(data, offset)
        return cls(sender=sender, handoff_id=handoff_id, vspace=vspace,
                   reason=reason)


def _expect_end(data, offset: int) -> None:
    if offset != len(data):
        raise DelegationWireError(
            f"{len(data) - offset} trailing byte(s) after frame"
        )


_DECODERS = {
    _KIND_OFFER: DelegateOffer,
    _KIND_ACCEPT: DelegateAccept,
    _KIND_TRANSFER: DelegateTransfer,
    _KIND_COMMIT: DelegateCommit,
    _KIND_ABORT: DelegateAbort,
}


def decode_delegation(data):
    """Decode any delegation frame; every malformation raises
    :class:`DelegationWireError` (a ValueError)."""
    view = memoryview(data) if not isinstance(data, memoryview) else data
    if len(view) < _FIXED.size:
        raise DelegationWireError(
            f"frame too short for header: {len(view)} < {_FIXED.size}"
        )
    magic, kind, version, reserved, handoff_id = _FIXED.unpack_from(view)
    if magic != _MAGIC:
        raise DelegationWireError(f"bad magic byte: {magic:#x}")
    if version != DELEGATION_VERSION:
        raise DelegationWireError(f"unsupported delegation version {version}")
    if reserved != 0:
        raise DelegationWireError(f"reserved byte must be zero, got {reserved}")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise DelegationWireError(f"unknown delegation kind {kind}")
    return decoder._decode_body(view, _FIXED.size, handoff_id)


__all__ = [
    "DELEGATION_VERSION",
    "DelegateAbort",
    "DelegateAccept",
    "DelegateCommit",
    "DelegateOffer",
    "DelegateRecord",
    "DelegateTransfer",
    "DelegationWireError",
    "MAX_RECORDS_PER_TRANSFER",
    "OFFER_ACCEPTED",
    "compose_handoff_id",
    "decode_delegation",
]
