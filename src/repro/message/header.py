"""The INS packet format (Section 4, Figure 10).

The header carries a version, the binding bit-flag ``B`` (early vs late
binding), the delivery bit-flag ``D`` (intentional anycast vs
multicast), byte offsets to the variable-length source name-specifier,
destination name-specifier and application data (so a forwarding agent
can locate the end of the name-specifiers without parsing them), a hop
limit decremented at each overlay hop, and a cache lifetime (zero
disallows caching).

One deliberate widening versus the 32-bit figure: offsets are 32-bit
here rather than 16, so large payloads (e.g. Camera images) fit without
a second fragment format the paper does not describe.

Extension (§9 of docs/PROTOCOL.md): a traced packet sets a flag bit and
carries a 24-byte trace context — (trace_id, span_id, parent_span_id),
Dapper-style — between the fixed header and the source name-specifier.
Untraced packets are byte-identical to the pre-extension format, so
tracing is zero-cost on the wire when off, and old frames still parse.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from ..obs import TRACE_CONTEXT_SIZE, TraceContext

#: Protocol version emitted by this implementation.
INS_VERSION = 1

#: Default hop limit for late-binding messages traversing the overlay.
DEFAULT_HOP_LIMIT = 32

#: struct layout: version u8, flags u8, unused u16, src/dst/data offsets
#: u32, hop limit u16, cache lifetime u16 -> 20-byte fixed header.
_HEADER = struct.Struct("!BBHIIIHH")

HEADER_SIZE = _HEADER.size

_FLAG_LATE_BINDING = 0x01
_FLAG_MULTICAST = 0x02
#: Extension flag (Section 3.2 caching): the sender of this message is
#: willing to have it answered from an INR's packet cache. Responses
#: use ``cache_lifetime`` instead to permit being stored.
_FLAG_ACCEPT_CACHED = 0x04
#: Extension flag (PROTOCOL.md §9): a 24-byte trace context follows the
#: fixed header (before the source name-specifier).
_FLAG_TRACE_CONTEXT = 0x08


class Binding(enum.Enum):
    """The B bit-flag: when the name-to-location binding happens."""

    EARLY = "early"
    LATE = "late"


class Delivery(enum.Enum):
    """The D bit-flag: anycast ("any") vs multicast ("all") delivery."""

    ANYCAST = "any"
    MULTICAST = "all"


class HeaderError(ValueError):
    """A packet's fixed header is malformed or inconsistent."""


@dataclass(frozen=True)
class Header:
    """The decoded fixed header of an INS packet."""

    version: int
    binding: Binding
    delivery: Delivery
    source_offset: int
    destination_offset: int
    data_offset: int
    hop_limit: int
    cache_lifetime: int
    accept_cached: bool = False
    #: Optional per-request trace context (PROTOCOL.md §9). ``None``
    #: packs to the exact pre-extension byte layout.
    trace: Optional[TraceContext] = None

    @property
    def wire_length(self) -> int:
        """Bytes this header occupies on the wire (fixed + trace)."""
        return HEADER_SIZE + (TRACE_CONTEXT_SIZE if self.trace else 0)

    def pack(self) -> bytes:
        """Serialize the header (and trace context, when present)."""
        out = bytearray(self.wire_length)
        self.pack_into(out, 0)
        return bytes(out)

    def pack_into(self, buffer, offset: int = 0) -> int:
        """Serialize in place at ``offset`` of a writable buffer.

        Returns the offset just past the written bytes. This is the
        zero-copy path :meth:`InsMessage.encode` uses to lay the header
        directly into the one packet buffer instead of concatenating
        intermediate ``bytes`` objects.
        """
        flags = 0
        if self.binding is Binding.LATE:
            flags |= _FLAG_LATE_BINDING
        if self.delivery is Delivery.MULTICAST:
            flags |= _FLAG_MULTICAST
        if self.accept_cached:
            flags |= _FLAG_ACCEPT_CACHED
        if self.trace is not None:
            flags |= _FLAG_TRACE_CONTEXT
        _HEADER.pack_into(
            buffer,
            offset,
            self.version,
            flags,
            0,
            self.source_offset,
            self.destination_offset,
            self.data_offset,
            self.hop_limit,
            self.cache_lifetime,
        )
        end = offset + HEADER_SIZE
        if self.trace is not None:
            self.trace.pack_into(buffer, end)
            end += TRACE_CONTEXT_SIZE
        return end

    @classmethod
    def unpack(cls, data) -> "Header":
        """Decode the fixed header from the front of ``data``.

        Accepts any bytes-like buffer, including a ``memoryview`` over a
        larger frame; ``unpack_from`` reads the fields without slicing.
        """
        if len(data) < HEADER_SIZE:
            raise HeaderError(
                f"packet too short for header: {len(data)} < {HEADER_SIZE}"
            )
        (
            version,
            flags,
            _unused,
            source_offset,
            destination_offset,
            data_offset,
            hop_limit,
            cache_lifetime,
        ) = _HEADER.unpack_from(data)
        if version != INS_VERSION:
            raise HeaderError(f"unsupported INS version {version}")
        trace = None
        names_floor = HEADER_SIZE
        if flags & _FLAG_TRACE_CONTEXT:
            names_floor = HEADER_SIZE + TRACE_CONTEXT_SIZE
            if len(data) < names_floor:
                raise HeaderError(
                    "trace flag set but packet too short for trace "
                    f"context: {len(data)} < {names_floor}"
                )
            trace = TraceContext.unpack(data, HEADER_SIZE)
        if not (
            names_floor <= source_offset <= destination_offset <= data_offset <= len(data)
        ):
            raise HeaderError(
                "header offsets out of order: "
                f"{source_offset}, {destination_offset}, {data_offset} "
                f"within packet of {len(data)} bytes"
                + (" (with trace context)" if trace is not None else "")
            )
        return cls(
            version=version,
            binding=Binding.LATE if flags & _FLAG_LATE_BINDING else Binding.EARLY,
            delivery=Delivery.MULTICAST if flags & _FLAG_MULTICAST else Delivery.ANYCAST,
            source_offset=source_offset,
            destination_offset=destination_offset,
            data_offset=data_offset,
            hop_limit=hop_limit,
            cache_lifetime=cache_lifetime,
            accept_cached=bool(flags & _FLAG_ACCEPT_CACHED),
            trace=trace,
        )
