"""Figure 14: discovery time of a new name vs overlay hops.

The paper advertises a new name at one end of an INR chain and measures
how long until resolvers h hops away have discovered it (grafted it
into their name-trees). Per Section 5.2,

    T_d(h) = h (T_lookup + T_graft + T_update + d_link)

so discovery time is linear in the hop count, with a measured slope
under 10 ms/hop — typical discovery times of a few tens of ms.

We build a chain overlay (link latencies make each joining INR pick the
previous one as its minimum-RTT peer), advertise one new name at the
head, and record the exact virtual time each INR grafts it, by stepping
the simulator event by event.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..naming import NameSpecifier
from ..resolver import InrConfig
from .domain import InsDomain


@dataclass
class DiscoveryRow:
    """Discovery time at one hop distance."""

    hops: int
    discovery_ms: float


def build_chain_domain(
    length: int,
    chain_latency: float = 0.002,
    far_latency: float = 0.05,
    seed: int = 0,
) -> InsDomain:
    """An InsDomain whose INRs form a chain overlay of ``length`` nodes.

    Link latencies are shaped so that INR-pings make each joining INR
    choose its chain predecessor: adjacent links are fast, all other
    pairs slow. (The DSR links stay at the default.)
    """
    domain = InsDomain(seed=seed, config=InrConfig(refresh_interval=1e6))
    addresses = [f"chain-{i}" for i in range(1, length + 1)]
    for i, a in enumerate(addresses):
        for j in range(i):
            latency = chain_latency if i - j == 1 else far_latency
            domain.network.configure_link(addresses[j], a, latency=latency)
    for address in addresses:
        domain.add_inr(address=address, settle=2.0)
    return domain


def run_discovery_experiment(
    max_hops: int = 8,
    seed: int = 0,
    chain_latency: float = 0.002,
    observe: bool = False,
) -> Union[List[DiscoveryRow], Tuple[List[DiscoveryRow], object]]:
    """Reproduce Figure 14 on a chain of ``max_hops + 1`` INRs.

    Hop h is the h-th resolver away from the one the new service
    attached to; discovery time is when h's tree first contains the
    name.

    ``observe=True`` runs the chain under an
    :class:`~repro.obs.ObsCollector` with per-event simulator profiling
    and returns ``(rows, collector)``; the harvested metrics explain
    the slope (update fan-out per hop, per-INR name counts, per-link
    traffic) rather than just reporting it.
    """
    domain = build_chain_domain(max_hops + 1, chain_latency=chain_latency, seed=seed)
    collector = domain.observe(profile_events=True) if observe else None
    # Verify the topology really is a chain; a mis-built overlay would
    # silently turn the linear-in-hops claim into something else.
    for index, inr in enumerate(domain.inrs[1:], start=1):
        parent = inr.neighbors.parent
        expected = f"chain-{index}"
        if parent is None or parent.address != expected:
            raise RuntimeError(
                f"overlay is not a chain: {inr.address} joined via "
                f"{parent.address if parent else None}, expected {expected}"
            )
    head = domain.inrs[0]
    baseline = {inr.address: inr.name_count() for inr in domain.inrs}
    domain.add_service(
        "[service=fig14[entity=new-name]]", resolver=head, refresh_interval=1e6
    )
    announced_at = domain.now
    discovered_at = {}
    # Step event by event so each graft is timestamped exactly.
    guard = 0
    while len(discovered_at) <= max_hops and domain.sim.step():
        guard += 1
        if guard > 2_000_000:
            raise RuntimeError("discovery did not complete; overlay broken?")
        for inr in domain.inrs:
            if inr.address not in discovered_at and inr.name_count() > baseline[inr.address]:
                discovered_at[inr.address] = domain.now
    rows = []
    for hop in range(1, max_hops + 1):
        address = f"chain-{hop + 1}"
        if address not in discovered_at:
            raise RuntimeError(f"name never reached {address}")
        rows.append(
            DiscoveryRow(
                hops=hop,
                discovery_ms=(discovered_at[address] - announced_at) * 1000.0,
            )
        )
    if collector is not None:
        domain.harvest()
        return rows, collector
    return rows


def write_bench_discovery_json(
    path: Union[str, Path],
    rows: Sequence[DiscoveryRow],
    collector: Optional[object] = None,
) -> dict:
    """Emit ``BENCH_discovery.json``: the Figure 14 curve plus, when a
    collector from an ``observe=True`` run is given, an
    ``observability`` section (metrics snapshot + span summary)
    explaining where the per-hop milliseconds went. Returns the payload.
    """
    payload = {
        "benchmark": "fig14-discovery-time",
        "schema_version": 1,
        "rows": [asdict(row) for row in rows],
        "slope_ms_per_hop": round(slope_ms_per_hop(rows), 6),
    }
    if collector is not None:
        payload["observability"] = collector.observability_payload()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def slope_ms_per_hop(rows: Sequence[DiscoveryRow]) -> float:
    """Least-squares slope of discovery time vs hops, in ms/hop."""
    n = len(rows)
    if n < 2:
        raise ValueError("need at least two points for a slope")
    mean_x = sum(r.hops for r in rows) / n
    mean_y = sum(r.discovery_ms for r in rows) / n
    numerator = sum((r.hops - mean_x) * (r.discovery_ms - mean_y) for r in rows)
    denominator = sum((r.hops - mean_x) ** 2 for r in rows)
    return numerator / denominator
