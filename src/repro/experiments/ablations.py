"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they check the Section 5.1.1
analytic model against measurements, compare hash-table against linear
child search, quantify what overlay relaxation buys, exercise the
spawn/delegate load-balancing machinery, and measure the packet cache.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..analysis import fit_parameters, lookup_time_closed_form
from ..naming import NameSpecifier
from ..nametree import NameTree
from ..resolver import InrConfig
from ..resolver.protocol import ResolutionRequest
from ..resolver.ports import INR_PORT
from .domain import InsDomain
from .workload import UniformWorkload


# ----------------------------------------------------------------------
# 1. The Section 5.1.1 model vs measured lookup times; hash vs linear
# ----------------------------------------------------------------------
@dataclass
class ModelCheckRow:
    depth: int
    measured_us: float
    predicted_us: float
    linear_search_us: float


def run_lookup_model_check(
    depths: Sequence[int] = (1, 2, 3, 4),
    names_per_tree: int = 400,
    lookups: int = 300,
    attribute_range: int = 3,
    value_range: int = 3,
    attributes_per_level: int = 2,
    seed: int = 0,
) -> Tuple[List[ModelCheckRow], float, float]:
    """Measure lookup time as d grows, for hash and linear search, and
    fit the paper's T(d) model to the hash measurements.

    Returns (rows, fitted_t_us, fitted_b_us). The shape to verify: the
    model tracks the measurements (it is exponential in d with base
    n_a), and linear search is consistently slower than hash search.
    """

    def measure(search: str, depth: int) -> float:
        rng = random.Random(seed + depth)
        workload = UniformWorkload(
            rng=rng,
            depth=depth,
            attribute_range=attribute_range,
            value_range=value_range,
            attributes_per_level=attributes_per_level,
        )
        tree = NameTree(search=search)
        target = min(
            names_per_tree,
            # shallow namespaces cannot produce many distinct names
            (attribute_range * value_range) ** min(depth, 2),
        )
        inserted = workload.distinct_names(target)
        from ..nametree import AnnouncerID, NameRecord

        for i, name in enumerate(inserted):
            tree.insert(
                name, NameRecord(announcer=AnnouncerID.generate(f"mc-{i}"))
            )
        # Query names known to be present so every lookup walks the
        # full n_a^d recursion instead of bailing out at a missing
        # attribute — that is the regime the T(d) model describes.
        queries = [inserted[rng.randrange(len(inserted))] for _ in range(lookups)]
        started = time.perf_counter()
        for query in queries:
            tree.lookup(query)
        return (time.perf_counter() - started) / lookups * 1e6

    measured = {d: measure("hash", d) for d in depths}
    linear = {d: measure("linear", d) for d in depths}
    fit = fit_parameters(
        [(d, attributes_per_level, measured[d] / 1e6) for d in depths]
    )
    rows = [
        ModelCheckRow(
            depth=d,
            measured_us=measured[d],
            predicted_us=lookup_time_closed_form(
                d, attributes_per_level, fit.t, fit.b
            )
            * 1e6,
            linear_search_us=linear[d],
        )
        for d in depths
    ]
    return rows, fit.t * 1e6, fit.b * 1e6


# ----------------------------------------------------------------------
# 2. Overlay relaxation quality
# ----------------------------------------------------------------------
@dataclass
class RelaxationResult:
    initial_tree_cost: float
    relaxed_tree_cost: float
    optimal_like_cost: float


def _tree_cost(domain: InsDomain) -> float:
    """Sum of parent-edge link latencies over the overlay tree."""
    total = 0.0
    for inr in domain.inrs:
        parent = inr.neighbors.parent
        if parent is not None:
            link = domain.network.link(inr.address, parent.address)
            total += link.latency
    return total


def run_relaxation_experiment(
    inr_count: int = 8, seed: int = 0, rounds: float = 400.0
) -> RelaxationResult:
    """Show what relaxation buys when network conditions change.

    The join algorithm already picks each node's cheapest edge to an
    earlier node, so at join time the tree is greedily optimal. We then
    *degrade* every tree edge (as wireless conditions shifting would),
    leaving better alternatives unused. Without relaxation the overlay
    is stuck with the degraded edges; with it, INRs re-measure their
    parents, probe earlier-ordered alternatives and swap to cheaper
    edges.

    Returns the tree cost right after degradation, after relaxation
    rounds, and the greedy cost achievable under the new latencies.
    """
    rng = random.Random(seed)
    config = InrConfig(
        refresh_interval=50.0,
        enable_relaxation=True,
        relaxation_interval=10.0,
    )
    domain = InsDomain(seed=seed, config=config)
    addresses = [f"inr-{i}" for i in range(1, inr_count + 1)]
    latency: dict = {}
    for i, a in enumerate(addresses):
        for j in range(i):
            latency[(addresses[j], a)] = rng.uniform(0.001, 0.08)
            domain.network.configure_link(
                addresses[j], a, latency=latency[(addresses[j], a)]
            )
    for address in addresses:
        domain.add_inr(address=address, settle=2.0)

    # Conditions change: every current tree edge becomes 10x slower.
    for inr in domain.inrs:
        parent = inr.neighbors.parent
        if parent is not None:
            pair = (
                (parent.address, inr.address)
                if (parent.address, inr.address) in latency
                else (inr.address, parent.address)
            )
            latency[pair] = latency[pair] * 10.0
            domain.network.configure_link(pair[0], pair[1], latency=latency[pair])
    degraded = _tree_cost(domain)
    domain.run(rounds)
    relaxed = _tree_cost(domain)
    greedy = sum(
        min(
            latency.get((addresses[j], addresses[i]))
            if (addresses[j], addresses[i]) in latency
            else latency[(addresses[i], addresses[j])]
            for j in range(i)
        )
        for i in range(1, inr_count)
    )
    return RelaxationResult(
        initial_tree_cost=degraded,
        relaxed_tree_cost=relaxed,
        optimal_like_cost=greedy,
    )


# ----------------------------------------------------------------------
# 3. Load balancing: spawn on lookup overload, delegate on update load
# ----------------------------------------------------------------------
@dataclass
class SpawnResult:
    inrs_before: int
    inrs_during_load: int
    inrs_after: int
    spawned_addresses: Tuple[str, ...]
    #: main INR's peak CPU utilization over 5 s sampling intervals
    main_peak_utilization: float = 0.0
    #: its LOWEST utilization over the second half of the load window —
    #: evidence that re-selection moved traffic off it at least part of
    #: the time (a single client oscillates between resolvers, so the
    #: minimum is the honest signal, not the tail).
    main_min_utilization_late: float = 0.0


def run_spawn_experiment(
    request_rate: float = 800.0,
    duration: float = 60.0,
    seed: int = 0,
    enable_load_balancing: bool = True,
) -> SpawnResult:
    """Overload one INR with early-binding lookups; with candidates
    registered, the INR must spawn a helper (Section 2.5).
    ``enable_load_balancing=False`` runs the same load with the policy
    off — the ablation: no helper appears and the resolver stays
    saturated for the whole run."""
    config = InrConfig(
        enable_load_balancing=enable_load_balancing,
        spawn_lookup_rate=200.0,
        load_check_interval=5.0,
        refresh_interval=1e6,
    )
    domain = InsDomain(seed=seed, config=config)
    inr = domain.add_inr(address="inr-main")
    domain.add_candidate("spare-1")
    domain.add_candidate("spare-2")
    service = domain.add_service("[service=spawnme[id=s1]]", resolver=inr)
    # The client runs the configuration protocol (periodic re-selection)
    # so traffic genuinely moves to the spawned helper: INR-pings queue
    # behind a saturated resolver's CPU, making it look slow.
    client = domain.add_client(resolver=inr, reselect_interval=5.0)
    domain.settle()
    before = len(domain.dsr.active_inrs)
    query = NameSpecifier.parse("[service=spawnme]")
    interval = 1.0 / request_rate

    # An open-loop load generator through the client's CURRENT resolver.
    def blast() -> None:
        client.send(
            client.resolver or inr.address,
            INR_PORT,
            ResolutionRequest(
                name=query, reply_to=client.address, reply_port=client.port
            ),
        )

    from .metrics import DomainSampler

    sampler = DomainSampler(domain, interval=5.0).start()
    ticks = int(duration / interval)
    for i in range(ticks):
        domain.sim.schedule(i * interval, blast)
    domain.run(duration)  # load is still flowing at this snapshot
    during = domain.dsr.active_inrs
    spawned = tuple(a for a in during if a.startswith("spare"))
    series = sampler.series(inr.address)
    peak = max((s.cpu_utilization for s in series), default=0.0)
    late = [s.cpu_utilization for s in series[len(series) // 2:]]
    late_min = min(late) if late else 0.0
    sampler.stop()
    # After the load stops, spawned helpers (whose vspaces the original
    # INR still routes) self-terminate on idleness.
    domain.run(120.0)
    after = domain.dsr.active_inrs
    return SpawnResult(
        inrs_before=before,
        inrs_during_load=len(during),
        inrs_after=len(after),
        spawned_addresses=spawned,
        main_peak_utilization=peak,
        main_min_utilization_late=late_min,
    )


@dataclass
class DelegationResult:
    vspaces_before: Tuple[str, ...]
    vspaces_after: Tuple[str, ...]
    delegate_resolvers: Tuple[str, ...]
    still_resolvable: bool


def run_delegation_experiment(
    seed: int = 0, enable_load_balancing: bool = True
) -> DelegationResult:
    """Update-overload an INR routing two vspaces; it must delegate one
    to a spawned INR, and names in the delegated space must remain
    resolvable through vspace forwarding.
    ``enable_load_balancing=False`` is the ablation: the overloaded
    resolver keeps both vspaces and nothing is shed."""
    config = InrConfig(
        enable_load_balancing=enable_load_balancing,
        spawn_lookup_rate=1e9,  # never spawn for lookups in this run
        delegate_update_rate=50.0,
        load_check_interval=5.0,
        refresh_interval=2.0,  # rapid refreshes create update load
        record_lifetime=1e9,
    )
    domain = InsDomain(seed=seed, config=config)
    inr = domain.add_inr(address="inr-main", vspaces=("space-a", "space-b"))
    domain.add_candidate("spare-1")
    for i in range(150):
        space = "space-a" if i % 2 == 0 else "space-b"
        domain.add_service(
            f"[service=bulk[id=n{i}]][vspace={space}]",
            resolver=inr,
            refresh_interval=2.0,
        )
    before = inr.vspaces
    domain.run(40.0)
    after = inr.vspaces
    delegated = tuple(v for v in before if v not in after)
    resolvers = ()
    still = False
    if delegated:
        resolvers = domain.dsr.resolvers_for(delegated[0])
        client = domain.add_client(resolver=inr)
        probe = client.resolve_early(
            NameSpecifier.parse(f"[service=bulk][vspace={delegated[0]}]")
        )
        domain.run(5.0)
        still = probe.done and len(probe.value) > 0
    return DelegationResult(
        vspaces_before=before,
        vspaces_after=after,
        delegate_resolvers=resolvers,
        still_resolvable=still,
    )


# ----------------------------------------------------------------------
# 4. Packet-cache effectiveness (the Camera extension, Section 3.2)
# ----------------------------------------------------------------------
@dataclass
class CacheResult:
    requests: int
    origin_served: int
    cache_answers: int


def run_cache_experiment(
    requests: int = 10, seed: int = 0, packet_cache: bool = True
) -> CacheResult:
    """Repeatedly request the same camera frame with caching enabled;
    after the first response is cached at the client's INR, the origin
    should stop seeing requests. ``packet_cache=False`` disables the
    INR caches (the controlled ablation: every request reaches the
    origin)."""
    from ..apps import CameraReceiver, CameraTransmitter

    config = InrConfig(
        refresh_interval=5.0,
        packet_cache_size=128 if packet_cache else 0,
    )
    domain = InsDomain(seed=seed, config=config)
    inr_a = domain.add_inr(address="inr-a")
    inr_b = domain.add_inr(address="inr-b")
    cam_node = domain.network.add_node("cam-host")
    cam = CameraTransmitter(
        cam_node,
        domain.ports.allocate(),
        camera_id="c1",
        room="510",
        resolver=inr_a.address,
        cache_lifetime=60,
    )
    cam.start()
    rx_node = domain.network.add_node("rx-host")
    receiver = CameraReceiver(
        rx_node,
        domain.ports.allocate(),
        receiver_id="r1",
        room="510",
        resolver=inr_b.address,
    )
    receiver.start()
    domain.settle()
    for i in range(requests):
        domain.sim.schedule(i * 0.5, receiver.request_frame, None, True)
    domain.run(requests * 0.5 + 5.0)
    return CacheResult(
        requests=requests,
        origin_served=cam.requests_served,
        cache_answers=inr_b.stats.packets_answered_from_cache
        + inr_a.stats.packets_answered_from_cache,
    )


# ----------------------------------------------------------------------
# 5. Soft-state refresh interval: overhead vs responsiveness
# ----------------------------------------------------------------------
@dataclass
class SoftStateRow:
    refresh_interval: float
    control_bytes_per_second: float
    stale_name_removal_s: float


def run_softstate_experiment(
    refresh_intervals: Sequence[float] = (2.0, 5.0, 15.0),
    services: int = 10,
    seed: int = 0,
) -> List[SoftStateRow]:
    """Quantify the paper's Section 7 tuning concern: faster refreshes
    buy faster removal of dead names at the price of bandwidth.

    For each interval (lifetime = 3x interval, the suite-wide rule):
    measure steady-state control traffic on the inter-INR link, then
    kill one service and measure how long its name lingers at the
    *remote* resolver.
    """
    from ..resolver import InrConfig

    rows: List[SoftStateRow] = []
    for interval in refresh_intervals:
        lifetime = 3.0 * interval
        domain = InsDomain(
            seed=seed,
            config=InrConfig(refresh_interval=interval, record_lifetime=lifetime),
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        victims = []
        for index in range(services):
            victims.append(
                domain.add_service(
                    f"[service=ss[id=n{index}]]",
                    resolver=a,
                    refresh_interval=interval,
                    lifetime=lifetime,
                )
            )
        domain.run(2.0 * interval)  # reach steady state
        link = domain.network.link("inr-a", "inr-b")
        bytes_before = link.stats.bytes
        window = 4.0 * interval
        domain.run(window)
        rate = (link.stats.bytes - bytes_before) / window

        victims[0].stop()
        died_at = domain.now
        removed_at = None
        guard = 0
        while removed_at is None:
            if not domain.sim.step():
                break
            guard += 1
            if guard > 5_000_000:
                raise RuntimeError("stale name never removed")
            if b.name_count() < services:
                removed_at = domain.now
        if removed_at is None:
            raise RuntimeError("simulation drained before removal")
        rows.append(
            SoftStateRow(
                refresh_interval=interval,
                control_bytes_per_second=rate,
                stale_name_removal_s=removed_at - died_at,
            )
        )
    return rows


# ----------------------------------------------------------------------
# 6. Footnote 3: soft-state flooding vs reliable-delta updates
# ----------------------------------------------------------------------
@dataclass
class UpdateModeRow:
    mode: str
    steady_state_bytes_per_second: float
    stale_name_removal_s: float
    change_propagation_s: float


def run_update_mode_comparison(
    services: int = 20,
    seed: int = 0,
) -> List[UpdateModeRow]:
    """Compare the paper's soft-state dissemination with the footnote-3
    reliable-delta alternative on three axes: steady-state inter-INR
    bandwidth, how fast a dead service's name vanishes one hop away,
    and how fast a metric change propagates.
    """
    from ..naming import NameSpecifier
    from ..resolver import InrConfig

    rows: List[UpdateModeRow] = []
    for mode in ("soft-state", "reliable-delta"):
        domain = InsDomain(
            seed=seed,
            config=InrConfig(
                update_mode=mode, refresh_interval=15.0, record_lifetime=45.0
            ),
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        victims = [
            domain.add_service(
                f"[service=um[id=n{i}]]", resolver=a,
                refresh_interval=15.0, lifetime=45.0,
                metric=1.0,
            )
            for i in range(services)
        ]
        domain.run(20.0)
        link = domain.network.link("inr-a", "inr-b")
        bytes_before = link.stats.bytes
        window = 60.0
        domain.run(window)
        rate = (link.stats.bytes - bytes_before) / window

        # Change propagation: flip one metric, watch it land at b.
        probe = NameSpecifier.parse("[service=um[id=n1]]")
        victims[1].set_metric(9.0)
        changed_at = domain.now
        seen_at = None
        guard = 0
        while seen_at is None and domain.sim.step():
            guard += 1
            if guard > 2_000_000:
                raise RuntimeError("metric change never propagated")
            records = b.trees["default"].lookup(probe)
            if records and next(iter(records)).anycast_metric == 9.0:
                seen_at = domain.now
        change_lag = (seen_at - changed_at) if seen_at is not None else float("inf")

        # Staleness: kill one service, watch its name vanish at b.
        victims[0].stop()
        died_at = domain.now
        removed_at = None
        guard = 0
        while removed_at is None and domain.sim.step():
            guard += 1
            if guard > 5_000_000:
                raise RuntimeError("stale name never removed")
            if b.name_count() < services:
                removed_at = domain.now
        removal = (removed_at - died_at) if removed_at is not None else float("inf")

        rows.append(
            UpdateModeRow(
                mode=mode,
                steady_state_bytes_per_second=rate,
                stale_name_removal_s=removal,
                change_propagation_s=change_lag,
            )
        )
    return rows
