"""Figure 13: name-tree memory footprint.

The paper reports the Java heap allocated to the name-tree growing from
about 0.5 MB to 4 MB as names go from a few hundred to 14300, with the
growth linear once the first ~thousand names have populated every
attribute and value the namespace can produce (after that, new names
add only pointers and name-records).

We measure the same quantity with a deep ``sys.getsizeof`` walk. The
shape to reproduce: a steeper start while the vocabulary fills, then
clean linear growth in n.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..nametree import AnnouncerID, Endpoint, NameRecord, NameTree, name_tree_bytes
from .workload import UniformWorkload


@dataclass
class SizeRow:
    """One point of the Figure 13 curve."""

    names_in_tree: int
    tree_bytes: int

    @property
    def tree_megabytes(self) -> float:
        return self.tree_bytes / (1024.0 * 1024.0)


def run_size_experiment(
    name_counts: Sequence[int] = (100, 2000, 5000, 10000, 14300),
    depth: int = 3,
    attribute_range: int = 3,
    value_range: int = 3,
    attributes_per_level: int = 2,
    seed: int = 0,
) -> List[SizeRow]:
    """Reproduce Figure 13: deep size of the tree at each name count."""
    counts = sorted(set(name_counts))
    workload = UniformWorkload(
        rng=random.Random(seed),
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    names = workload.distinct_names(counts[-1])
    tree = NameTree()
    inserted = 0
    rows: List[SizeRow] = []
    for count in counts:
        while inserted < count:
            record = NameRecord(
                announcer=AnnouncerID.generate(f"fig13-{inserted}"),
                endpoints=[Endpoint(host=f"fig13-{inserted}", port=1)],
            )
            tree.insert(names[inserted], record)
            inserted += 1
        rows.append(SizeRow(names_in_tree=count, tree_bytes=name_tree_bytes(tree)))
    return rows
