"""INS vs a DNS-style baseline under node mobility.

The paper's motivation for late binding: name-to-address mappings change
*during* sessions, so resolving early (DNS-style) hands applications
addresses that go stale. This experiment runs the identical workload —
one service, one client sending it a request every half second, the
service's host changing address mid-run — against three systems:

1. **INS** (intentional anycast, soft-state refresh),
2. **DNS + operator re-registration**: the record is fixed immediately
   after the move, but clients keep serving their cached answer until
   the TTL expires,
3. **DNS, never re-registered**: what actually happens to a statically
   configured mapping when a host moves.

Reported: messages delivered and the outage (time from the move to the
next successful delivery).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..baselines import DnsClient, DnsDirectory, DnsRegisteredService
from ..client import MobilityManager
from ..naming import NameSpecifier
from ..netsim import Network, Simulator
from ..resolver import InrConfig
from .domain import InsDomain


@dataclass
class MobilityRow:
    """Outcome of the mobility scenario for one system."""

    system: str
    requests_sent: int
    delivered: int
    outage_seconds: float  # inf when service is never reached again


_REQUEST_INTERVAL = 0.5
_MOVE_AT = 20.0
_DURATION = 120.0


def _run_ins(seed: int) -> MobilityRow:
    domain = InsDomain(
        seed=seed, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
    )
    inr = domain.add_inr()
    service = domain.add_service("[service=mob[id=1]]", resolver=inr,
                                 refresh_interval=3.0, lifetime=9.0)
    received: List[float] = []
    service.on_message(lambda m, s: received.append(domain.now))
    client = domain.add_client(resolver=inr)
    domain.run(1.0)

    name = NameSpecifier.parse("[service=mob]")
    sent = 0
    t = 0.0
    while t < _DURATION:
        domain.sim.schedule(t, client.send_anycast, name, b"req")
        sent += 1
        t += _REQUEST_INTERVAL
    move_time = domain.now + _MOVE_AT
    domain.sim.schedule(
        _MOVE_AT, lambda: MobilityManager(service.node).migrate("roamed-host")
    )
    domain.run(_DURATION + 10.0)
    return MobilityRow(
        system="INS (intentional anycast)",
        requests_sent=sent,
        delivered=len(received),
        outage_seconds=_outage(received, move_time),
    )


def _run_dns(seed: int, re_register: bool) -> MobilityRow:
    sim = Simulator(seed=seed)
    network = Network(sim)
    directory_node = network.add_node("dns-server")
    directory = DnsDirectory(directory_node, default_ttl=60.0)
    service_node = network.add_node("service-host")
    service = DnsRegisteredService(service_node, 7000, "printer.example",
                                   "dns-server", ttl=60.0)
    service.start()
    client_node = network.add_node("client-host")
    client = DnsClient(client_node, 7001, "dns-server")
    received: List[float] = []

    original_handle = service.handle_message

    def observing_handle(payload, source):
        original_handle(payload, source)
        received.append(sim.now)

    service.handle_message = observing_handle

    def one_request():
        def deliver(endpoint):
            if endpoint is not None:
                network.send(client.address, endpoint.host, endpoint.port,
                             b"req", 100)

        client.resolve("printer.example").then(deliver)

    sent = 0
    t = 1.0
    while t < 1.0 + _DURATION:
        sim.schedule(t, one_request)
        sent += 1
        t += _REQUEST_INTERVAL
    move_time = 1.0 + _MOVE_AT

    def move():
        network.rename_node("service-host", "roamed-host")
        if re_register:
            service.register()  # the operator fixes the DNS record

    sim.schedule(move_time, move)
    sim.run(until=1.0 + _DURATION + 10.0)
    label = (
        "DNS baseline (record fixed at move)"
        if re_register
        else "DNS baseline (never re-registered)"
    )
    return MobilityRow(
        system=label,
        requests_sent=sent,
        delivered=len(received),
        outage_seconds=_outage(received, move_time),
    )


def _outage(received: List[float], move_time: float) -> float:
    after = [t for t in received if t >= move_time]
    if not after:
        return math.inf
    before = [t for t in received if t < move_time]
    resume = min(after)
    last_good = max(before) if before else move_time
    return resume - last_good


def run_mobility_comparison(seed: int = 0) -> List[MobilityRow]:
    """The three systems under the identical mobility scenario."""
    return [
        _run_ins(seed),
        _run_dns(seed, re_register=True),
        _run_dns(seed, re_register=False),
    ]
