"""Uniform random name workloads (Section 5.1).

The paper's analysis and experiments grow name-specifiers uniformly in
four dimensions (Figure 11):

- ``d``   — number of av-pair levels (half the alternating tree depth),
- ``r_a`` — range of possible attributes at each level,
- ``r_v`` — range of possible values per attribute,
- ``n_a`` — actual number of attributes present per level.

Figure 12 fixes r_a = 3, r_v = 3, n_a = 2, d = 3 and varies the number
of distinct names ``n`` in the tree. This module reproduces that
generator, plus query generation (optionally with wild-cards) and the
advertisement plumbing the protocol-level experiments need.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..naming import AVPair, NameSpecifier, VSPACE_ATTRIBUTE
from ..nametree import AnnouncerID, Endpoint, NameRecord, NameTree


class UniformWorkload:
    """Generates uniformly-grown random name-specifiers."""

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        depth: int = 3,
        attribute_range: int = 3,
        value_range: int = 3,
        attributes_per_level: int = 2,
        vspace: Optional[str] = None,
        token_pad: int = 0,
    ) -> None:
        """``token_pad`` widens attribute/value tokens so the average
        wire size can be calibrated (the paper's random names averaged
        82 bytes)."""
        if attributes_per_level > attribute_range:
            raise ValueError(
                "cannot place more attributes per level than the attribute range"
            )
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.rng = rng if rng is not None else random.Random(0)
        self.depth = depth
        self.attribute_range = attribute_range
        self.value_range = value_range
        self.attributes_per_level = attributes_per_level
        self.vspace = vspace
        self._pad = "x" * token_pad

    # ------------------------------------------------------------------
    # Name generation
    # ------------------------------------------------------------------
    def _attribute_token(self, index: int) -> str:
        return f"a{index}{self._pad}"

    def _value_token(self, index: int) -> str:
        return f"v{index}{self._pad}"

    def _random_pair(self, level: int) -> AVPair:
        attribute_index = self.rng.randrange(self.attribute_range)
        value_index = self.rng.randrange(self.value_range)
        pair = AVPair(self._attribute_token(attribute_index), self._value_token(value_index))
        if level < self.depth:
            self._add_children(pair, level)
        return pair

    def _add_children(self, pair: AVPair, level: int) -> None:
        attributes = self.rng.sample(
            range(self.attribute_range), self.attributes_per_level
        )
        for attribute_index in sorted(attributes):
            child = AVPair(
                self._attribute_token(attribute_index),
                self._value_token(self.rng.randrange(self.value_range)),
            )
            if level + 1 < self.depth:
                self._add_children(child, level + 1)
            pair.add_child(child)

    def random_name(self) -> NameSpecifier:
        """One uniformly-grown random name-specifier."""
        name = NameSpecifier()
        attributes = self.rng.sample(
            range(self.attribute_range), self.attributes_per_level
        )
        for attribute_index in sorted(attributes):
            root = AVPair(
                self._attribute_token(attribute_index),
                self._value_token(self.rng.randrange(self.value_range)),
            )
            if self.depth > 1:
                self._add_children(root, 1)
            name.add_pair(root)
        if self.vspace is not None:
            name.add(VSPACE_ATTRIBUTE, self.vspace)
        return name

    def distinct_names(self, count: int, max_attempts_factor: int = 200) -> List[NameSpecifier]:
        """``count`` pairwise-distinct random names.

        Raises when the configured namespace cannot produce that many
        (prevents silent infinite loops on tiny parameter choices).
        """
        names: List[NameSpecifier] = []
        seen = set()
        attempts = 0
        limit = count * max_attempts_factor
        while len(names) < count:
            attempts += 1
            if attempts > limit:
                raise ValueError(
                    f"could not generate {count} distinct names from this "
                    f"namespace after {attempts} attempts; got {len(names)}"
                )
            name = self.random_name()
            key = name.canonical_key()
            if key not in seen:
                seen.add(key)
                names.append(name)
        return names

    def random_query(self, wildcard_probability: float = 0.0) -> NameSpecifier:
        """A random query; leaf values become ``*`` with the given
        probability (wild-cards are leaf-only, Section 2.3.2)."""
        name = self.random_name()
        if wildcard_probability > 0:
            for pair in name.walk():
                if pair.is_leaf and self.rng.random() < wildcard_probability:
                    pair.value = "*"
        return name

    # ------------------------------------------------------------------
    # Tree construction helpers
    # ------------------------------------------------------------------
    def populate_tree(
        self, tree: NameTree, count: int, expires_at: float = float("inf")
    ) -> List[NameRecord]:
        """Fill ``tree`` with ``count`` distinct advertised names."""
        records = []
        for index, name in enumerate(self.distinct_names(count)):
            record = NameRecord(
                announcer=AnnouncerID.generate(f"wl-{index}"),
                endpoints=[Endpoint(host=f"wl-{index}", port=1)],
                anycast_metric=float(self.rng.randrange(100)),
                expires_at=expires_at,
            )
            tree.insert(name, record)
            records.append(record)
        return records

    def average_wire_size(self, samples: int = 200) -> float:
        """Mean compact wire size of generated names, in bytes."""
        total = sum(self.random_name().wire_size() for _ in range(samples))
        return total / samples
