"""Figure 9: periodic update time with virtual-space partitioning.

The paper splits the namespace into two equally-sized virtual spaces
and compares the time to process a periodic update round in three
configurations:

1. one vspace on one machine,
2. two vspaces on one machine,
3. two vspaces on two machines (one each).

The finding: splitting vspaces on a *single* machine does not help (the
machine still processes every name), but distributing the two vspaces
onto two resolvers halves the per-machine processing time — the paper's
namespace-partitioning scaling technique (Section 2.5).

We build each configuration, deliver one full update round, and measure
the per-machine processing makespan (the maximum over machines).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..nametree import AnnouncerID, Endpoint
from ..netsim import Network, Simulator
from ..resolver import INR, InrConfig, NameUpdate, UpdateBatch
from ..resolver.ports import INR_PORT
from .workload import UniformWorkload


@dataclass
class PartitionRow:
    """One point of the Figure 9 curves (times in milliseconds)."""

    total_names: int
    one_vspace_one_machine_ms: float
    two_vspaces_one_machine_ms: float
    two_vspaces_two_machines_ms: float


def _updates_for_vspace(
    count: int, vspace: str, seed: int, lifetime: float
) -> List[NameUpdate]:
    workload = UniformWorkload(
        rng=random.Random(seed),
        depth=2,
        attribute_range=4,
        value_range=4,
        attributes_per_level=2,
        token_pad=1,
    )
    return [
        NameUpdate(
            name=name,
            announcer=AnnouncerID.generate(f"fig09-{vspace}-{seed}-{i}"),
            endpoints=(Endpoint(host=f"origin-{vspace}-{i}", port=1),),
            anycast_metric=0.0,
            route_metric=0.001,
            lifetime=lifetime,
            vspace=vspace,
        )
        for i, name in enumerate(workload.distinct_names(count))
    ]


def _measure_round(
    assignments: Sequence[Tuple[Tuple[str, ...], List[List[NameUpdate]]]],
    seed: int,
) -> float:
    """Run one update round; return the max per-machine makespan in ms.

    ``assignments`` lists, per machine, the vspaces its INR routes and
    the update batches delivered to it.
    """
    sim = Simulator(seed=seed)
    network = Network(sim)
    config = InrConfig(refresh_interval=1e9, record_lifetime=1e9)
    nodes = []
    for index, (vspaces, batches) in enumerate(assignments):
        node = network.add_node(f"machine-{index}")
        inr = INR(node, dsr_address=None, vspaces=vspaces, config=config)
        inr.start()
        nodes.append(node)
        feeder = network.add_node(f"feeder-{index}")
        # Figure 9 isolates *processing* time, so the delivery link is
        # made effectively infinite; Figure 8 is where bandwidth counts.
        network.configure_link(
            feeder.address, node.address, latency=0.0, bandwidth_bps=1e12
        )
        for batch_number, updates in enumerate(batches):
            network.send(
                feeder.address,
                node.address,
                INR_PORT,
                UpdateBatch(
                    sender=feeder.address, updates=updates, triggered=False
                ),
                sum(u.wire_size() for u in updates) + 28,
            )
    start = sim.now
    # Periodic protocol timers reschedule forever; bound the run well
    # past any plausible processing makespan instead of draining.
    sim.run(until=start + 600.0)
    makespans = [max(0.0, node.cpu.free_at - start) for node in nodes]
    return max(makespans) * 1000.0


def run_partition_experiment(
    name_counts: Sequence[int] = (500, 1000, 2000, 3000, 4000, 5000),
    seed: int = 0,
) -> List[PartitionRow]:
    """Reproduce Figure 9. Names are split evenly into two vspaces."""
    rows: List[PartitionRow] = []
    lifetime = 1e9
    for total in name_counts:
        half = total // 2
        space_a = _updates_for_vspace(half, "space-a", seed, lifetime)
        space_b = _updates_for_vspace(total - half, "space-b", seed + 1, lifetime)
        merged = [
            NameUpdate(
                name=u.name,
                announcer=u.announcer,
                endpoints=u.endpoints,
                anycast_metric=u.anycast_metric,
                route_metric=u.route_metric,
                lifetime=u.lifetime,
                vspace="space-a",
            )
            for u in space_a + space_b
        ]
        one_one = _measure_round([(("space-a",), [merged])], seed)
        two_one = _measure_round(
            [(("space-a", "space-b"), [space_a, space_b])], seed
        )
        two_two = _measure_round(
            [(("space-a",), [space_a]), (("space-b",), [space_b])], seed
        )
        rows.append(
            PartitionRow(
                total_names=total,
                one_vspace_one_machine_ms=one_one,
                two_vspaces_one_machine_ms=two_one,
                two_vspaces_two_machines_ms=two_two,
            )
        )
    return rows
