"""Figure 12: name-tree lookup performance.

The paper builds a large random name-tree with r_a = 3, r_v = 3,
n_a = 2, d = 3, varies the number of distinct names n from 100 to
14300, and times 1000 random lookups at each size. Their Java
implementation on a Pentium II 450 sustains ~900 lookups/s at small n,
decaying to ~700 at n = 14300.

We run the identical experiment natively on the Python name-tree (this
is a real-time measurement, not a simulation): the shape to reproduce
is high throughput that decays mildly and smoothly as the tree grows.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Sequence

from ..nametree import NameTree
from .workload import UniformWorkload


@dataclass
class LookupRow:
    """One point of the Figure 12 curve."""

    names_in_tree: int
    lookups_per_second: float
    mean_lookup_us: float


def run_lookup_experiment(
    name_counts: Sequence[int] = (100, 2000, 5000, 10000, 14300),
    lookups_per_point: int = 1000,
    depth: int = 3,
    attribute_range: int = 3,
    value_range: int = 3,
    attributes_per_level: int = 2,
    seed: int = 0,
    search: str = "hash",
) -> List[LookupRow]:
    """Reproduce Figure 12. Returns one row per tree size.

    The tree is grown incrementally (names are cumulative across
    points), matching how the paper sweeps n upward.
    """
    counts = sorted(set(name_counts))
    rng = random.Random(seed)
    workload = UniformWorkload(
        rng=rng,
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    names = workload.distinct_names(counts[-1])
    query_source = UniformWorkload(
        rng=random.Random(seed + 1),
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    queries = [query_source.random_name() for _ in range(lookups_per_point)]

    tree = NameTree(search=search)
    inserted = 0
    rows: List[LookupRow] = []
    from ..nametree import AnnouncerID, Endpoint, NameRecord

    for count in counts:
        while inserted < count:
            record = NameRecord(
                announcer=AnnouncerID.generate(f"fig12-{inserted}"),
                endpoints=[Endpoint(host=f"fig12-{inserted}", port=1)],
            )
            tree.insert(names[inserted], record)
            inserted += 1
        started = time.perf_counter()
        for query in queries:
            tree.lookup(query)
        elapsed = time.perf_counter() - started
        rows.append(
            LookupRow(
                names_in_tree=count,
                lookups_per_second=lookups_per_point / elapsed,
                mean_lookup_us=elapsed / lookups_per_point * 1e6,
            )
        )
    return rows
