"""Figure 12: name-tree lookup performance.

The paper builds a large random name-tree with r_a = 3, r_v = 3,
n_a = 2, d = 3, varies the number of distinct names n from 100 to
14300, and times 1000 random lookups at each size. Their Java
implementation on a Pentium II 450 sustains ~900 lookups/s at small n,
decaying to ~700 at n = 14300.

We run the identical experiment natively on the Python name-tree (this
is a real-time measurement, not a simulation): the shape to reproduce
is high throughput that decays mildly and smoothly as the tree grows.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..nametree import NameTree
from .workload import UniformWorkload


@dataclass
class LookupRow:
    """One point of the Figure 12 curve."""

    names_in_tree: int
    lookups_per_second: float
    mean_lookup_us: float


def run_lookup_experiment(
    name_counts: Sequence[int] = (100, 2000, 5000, 10000, 14300),
    lookups_per_point: int = 1000,
    depth: int = 3,
    attribute_range: int = 3,
    value_range: int = 3,
    attributes_per_level: int = 2,
    seed: int = 0,
    search: str = "hash",
    memoize: bool = False,
) -> List[LookupRow]:
    """Reproduce Figure 12. Returns one row per tree size.

    The tree is grown incrementally (names are cumulative across
    points), matching how the paper sweeps n upward. ``memoize``
    defaults to off so the curve measures raw LOOKUP-NAME, as the paper
    does; the memo's effect is measured by :func:`run_memo_ablation`.
    """
    counts = sorted(set(name_counts))
    rng = random.Random(seed)
    workload = UniformWorkload(
        rng=rng,
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    names = workload.distinct_names(counts[-1])
    query_source = UniformWorkload(
        rng=random.Random(seed + 1),
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    queries = [query_source.random_name() for _ in range(lookups_per_point)]

    tree = NameTree(search=search, memoize=memoize)
    inserted = 0
    rows: List[LookupRow] = []
    from ..nametree import AnnouncerID, Endpoint, NameRecord

    for count in counts:
        while inserted < count:
            record = NameRecord(
                announcer=AnnouncerID.generate(f"fig12-{inserted}"),
                endpoints=[Endpoint(host=f"fig12-{inserted}", port=1)],
            )
            tree.insert(names[inserted], record)
            inserted += 1
        started = time.perf_counter()
        for query in queries:
            tree.lookup(query)
        elapsed = time.perf_counter() - started
        rows.append(
            LookupRow(
                names_in_tree=count,
                lookups_per_second=lookups_per_point / elapsed,
                mean_lookup_us=elapsed / lookups_per_point * 1e6,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Cached-vs-uncached ablation (the resolution fast path)
# ----------------------------------------------------------------------
@dataclass
class MemoAblationResult:
    """Cached vs uncached LOOKUP-NAME on a repeated-query workload."""

    names_in_tree: int
    distinct_queries: int
    lookups: int
    uncached_lookups_per_second: float
    cached_lookups_per_second: float
    speedup: float
    memo_hits: int
    memo_misses: int
    refreshes_during_cached_run: int
    memo_invalidations: int


def run_memo_ablation(
    names_in_tree: int = 5000,
    distinct_queries: int = 64,
    lookups: int = 20000,
    depth: int = 3,
    attribute_range: int = 3,
    value_range: int = 3,
    attributes_per_level: int = 2,
    seed: int = 0,
    refresh_every: int = 0,
) -> MemoAblationResult:
    """Measure the lookup memo on the workload it is built for: a small
    set of distinct queries issued over and over against a tree whose
    record set is stable (or only *refreshed*, never changed).

    ``refresh_every`` > 0 re-inserts an existing advertisement (a pure
    periodic refresh) every that-many lookups during the cached run, to
    demonstrate that refreshes keep the memo warm instead of flushing
    it. Returns throughput for both modes plus the memo counters.
    """
    rng = random.Random(seed)
    workload = UniformWorkload(
        rng=rng,
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    names = workload.distinct_names(names_in_tree)
    query_source = UniformWorkload(
        rng=random.Random(seed + 1),
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    queries = [query_source.random_name() for _ in range(distinct_queries)]

    from ..nametree import AnnouncerID, Endpoint, NameRecord

    def build(memoize: bool) -> NameTree:
        tree = NameTree(memoize=memoize)
        for index, name in enumerate(names):
            tree.insert(
                name,
                NameRecord(
                    announcer=AnnouncerID.generate(f"memo-{index}", startup_time=1.0),
                    endpoints=[Endpoint(host=f"memo-{index}", port=1)],
                ),
            )
        return tree

    rates = {}
    counters = {}
    refreshes = 0
    for memoize in (False, True):
        tree = build(memoize)
        started = time.perf_counter()
        for index in range(lookups):
            tree.lookup(queries[index % distinct_queries])
            if memoize and refresh_every and index % refresh_every == 0:
                # A pure periodic refresh: same announcer, same name.
                j = index % len(names)
                tree.insert(
                    names[j],
                    NameRecord(
                        announcer=AnnouncerID.generate(f"memo-{j}", startup_time=1.0),
                        endpoints=[Endpoint(host=f"memo-{j}", port=1)],
                    ),
                )
                refreshes += 1
        elapsed = time.perf_counter() - started
        rates[memoize] = lookups / elapsed
        counters[memoize] = (tree.memo_hits, tree.memo_misses, tree.memo_invalidations)

    hits, misses, invalidations = counters[True]
    return MemoAblationResult(
        names_in_tree=names_in_tree,
        distinct_queries=distinct_queries,
        lookups=lookups,
        uncached_lookups_per_second=rates[False],
        cached_lookups_per_second=rates[True],
        speedup=rates[True] / rates[False],
        memo_hits=hits,
        memo_misses=misses,
        refreshes_during_cached_run=refreshes,
        memo_invalidations=invalidations,
    )


# ----------------------------------------------------------------------
# Update-ingestion ablation (the batched refresh path)
# ----------------------------------------------------------------------
@dataclass
class UpdateIngestionResult:
    """Periodic-refresh ingestion: per-update validation vs the batched
    refresh fast path.

    "Legacy" reproduces what every insert used to cost: a full
    ``require_concrete`` walk of the name per update, one potential
    epoch move per name. "Batched" is the current INR path: one
    :meth:`NameTree.batch` per delivery, refreshes detected by
    advertised-key equality (no re-validation walk), at most one epoch
    per batch.
    """

    names_in_tree: int
    refresh_rounds: int
    updates_applied: int
    legacy_updates_per_second: float
    batched_updates_per_second: float
    speedup: float


def run_update_ingestion_bench(
    names_in_tree: int = 2000,
    refresh_rounds: int = 10,
    depth: int = 3,
    attribute_range: int = 3,
    value_range: int = 3,
    attributes_per_level: int = 2,
    seed: int = 0,
) -> UpdateIngestionResult:
    """Measure refresh-storm ingestion throughput both ways.

    The workload is the INR's steady state: every announced name is
    re-advertised each lifetime, so the tree absorbs ``names_in_tree``
    pure refreshes per round. Each mode gets its own freshly-populated
    tree and is timed over ``refresh_rounds`` full storms.
    """
    rng = random.Random(seed)
    workload = UniformWorkload(
        rng=rng,
        depth=depth,
        attribute_range=attribute_range,
        value_range=value_range,
        attributes_per_level=attributes_per_level,
    )
    names = workload.distinct_names(names_in_tree)

    from ..nametree import AnnouncerID, Endpoint, NameRecord

    def fresh_record(index: int) -> NameRecord:
        # A new object per update, same announcer: exactly what the INR
        # builds when a periodic NAME-UPDATE arrives.
        return NameRecord(
            announcer=AnnouncerID(host=f"ingest-{index}", startup_time=1.0),
            endpoints=[Endpoint(host=f"ingest-{index}", port=1)],
        )

    def populate() -> NameTree:
        tree = NameTree()
        for index, name in enumerate(names):
            tree.insert(name, fresh_record(index))
        return tree

    updates = refresh_rounds * names_in_tree

    legacy_tree = populate()
    started = time.perf_counter()
    for _ in range(refresh_rounds):
        for index, name in enumerate(names):
            name.require_concrete()  # the per-update walk inserts used to pay
            legacy_tree.insert(name, fresh_record(index))
    legacy_rate = updates / (time.perf_counter() - started)

    batched_tree = populate()
    started = time.perf_counter()
    for _ in range(refresh_rounds):
        with batched_tree.batch():
            for index, name in enumerate(names):
                batched_tree.insert(name, fresh_record(index))
    batched_rate = updates / (time.perf_counter() - started)

    return UpdateIngestionResult(
        names_in_tree=names_in_tree,
        refresh_rounds=refresh_rounds,
        updates_applied=updates,
        legacy_updates_per_second=legacy_rate,
        batched_updates_per_second=batched_rate,
        speedup=batched_rate / legacy_rate,
    )


def write_bench_lookup_json(
    path: Union[str, Path],
    curve: Sequence[LookupRow],
    ablation: Optional[MemoAblationResult] = None,
    ingestion: Optional[UpdateIngestionResult] = None,
) -> dict:
    """Emit ``BENCH_lookup.json``: the Figure-12 curve plus the
    cached-vs-uncached ablation and the update-ingestion ablation, as a
    machine-readable perf trajectory for later sessions to compare
    against. Returns the payload."""
    payload = {
        "benchmark": "fig12-lookup",
        "schema_version": 2,
        "curve": [asdict(row) for row in curve],
        "memo_ablation": asdict(ablation) if ablation is not None else None,
        "update_ingestion": asdict(ingestion) if ingestion is not None else None,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
