"""Figure 8: CPU vs bandwidth saturation under name-update load.

The paper pushes randomly generated ~82-byte intentional names between
INRs with a 15-second refresh interval over ~1 Mbps wireless links and
finds the process is **CPU-bound**: the Pentium II saturates (100% CPU)
well before the link reaches 1 Mbps — around 13-15k names per refresh
interval, where bandwidth consumption is still under 1 Mbps.

Here a feeder process streams an ``UpdateBatch`` of n names to one INR
every refresh interval across a 1 Mbps link; the INR's simulated CPU
charges the calibrated per-name update cost (see
:class:`repro.resolver.costs.CostModel`). The shape to reproduce: the
CPU utilization line crosses 100% while the bandwidth line is still
comfortably below it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..naming import NameSpecifier
from ..nametree import AnnouncerID, Endpoint
from ..netsim import Network, Process, Simulator
from ..resolver import INR, InrConfig, NameUpdate, UpdateBatch
from ..resolver.ports import INR_PORT
from .workload import UniformWorkload


@dataclass
class SaturationRow:
    """One point of the Figure 8 curves."""

    total_names: int
    cpu_percent: float
    bandwidth_percent: float
    bytes_per_interval: int


class _UpdateFeeder(Process):
    """Plays the INR network: pushes one update batch per interval."""

    def __init__(self, node, port, target: str, updates: List[NameUpdate], interval: float):
        super().__init__(node, port)
        self._target = target
        self._updates = updates
        self._interval = interval

    def start(self) -> None:
        self.every(self._interval, self.push, fire_immediately=True)

    def push(self) -> None:
        self.send(
            self._target,
            INR_PORT,
            UpdateBatch(sender=self.address, updates=self._updates, triggered=False),
        )


def _build_updates(count: int, seed: int, lifetime: float, vspace: str) -> List[NameUpdate]:
    # depth=2, n_a=2 with unpadded tokens yields ~84 bytes per name on
    # the wire (name text + endpoints + metrics + AnnouncerID), matching
    # the paper's randomly-generated 82-byte intentional names.
    workload = UniformWorkload(
        rng=random.Random(seed),
        depth=2,
        attribute_range=4,
        value_range=4,
        attributes_per_level=2,
        token_pad=0,
    )
    names = workload.distinct_names(count) if count else []
    return [
        NameUpdate(
            name=name,
            announcer=AnnouncerID.generate(f"fig08-{seed}-{index}"),
            endpoints=(Endpoint(host=f"origin-{index}", port=1),),
            anycast_metric=0.0,
            route_metric=0.001,
            lifetime=lifetime,
            vspace=vspace,
        )
        for index, name in enumerate(names)
    ]


def run_saturation_experiment(
    name_counts: Sequence[int] = (0, 2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000),
    refresh_interval: float = 15.0,
    link_bandwidth_bps: float = 1_000_000.0,
    measure_intervals: int = 2,
    seed: int = 0,
) -> List[SaturationRow]:
    """Reproduce Figure 8. One fresh simulation per point."""
    rows: List[SaturationRow] = []
    for count in name_counts:
        sim = Simulator(seed=seed)
        network = Network(sim, default_bandwidth_bps=link_bandwidth_bps)
        inr_node = network.add_node("inr")
        feeder_node = network.add_node("feeder")
        link = network.configure_link("feeder", "inr", bandwidth_bps=link_bandwidth_bps)
        config = InrConfig(
            refresh_interval=refresh_interval,
            record_lifetime=refresh_interval * 3,
        )
        inr = INR(inr_node, dsr_address=None, config=config)
        inr.start()
        updates = _build_updates(count, seed, lifetime=refresh_interval * 3, vspace="default")
        feeder = _UpdateFeeder(feeder_node, 9000, "inr", updates, refresh_interval)
        feeder.start()

        # Warm-up: the first batch grafts every name (more expensive in
        # real terms though not in model cost); measure steady refreshes.
        sim.run(until=refresh_interval)
        busy_before = inr_node.cpu.busy_seconds
        bytes_before = link.stats.bytes
        window = refresh_interval * measure_intervals
        sim.run(until=refresh_interval + window)
        busy = inr_node.cpu.busy_seconds - busy_before
        transferred = link.stats.bytes - bytes_before
        rows.append(
            SaturationRow(
                total_names=count,
                cpu_percent=100.0 * busy / window,
                bandwidth_percent=100.0
                * (transferred * 8.0 / window)
                / link_bandwidth_bps,
                bytes_per_interval=transferred // measure_intervals,
            )
        )
    return rows


def saturation_point(rows: Sequence[SaturationRow]) -> int:
    """The smallest name count whose CPU utilization reaches 100%,
    or -1 when none does."""
    for row in rows:
        if row.cpu_percent >= 100.0:
            return row.total_names
    return -1
