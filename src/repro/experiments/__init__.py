"""Experiment harnesses: domain wiring, workloads and one module per
figure of the paper's evaluation (Section 5)."""

from .domain import DSR_HOST, InsDomain
from .metrics import DomainSampler, ResolverSample
from .workload import UniformWorkload

__all__ = [
    "DSR_HOST",
    "DomainSampler",
    "InsDomain",
    "ResolverSample",
    "UniformWorkload",
]
