"""Time-series sampling of resolver and link state during experiments.

Experiments that care about *when* something happens (spawn timelines,
utilization ramps) need periodic samples, not just end-of-run totals.
:class:`DomainSampler` rides the simulator's event loop and records one
row per interval for every live INR: CPU utilization over the interval,
name count, cumulative lookups, and inter-INR traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .domain import InsDomain


@dataclass(frozen=True)
class ResolverSample:
    """One resolver's state over one sampling interval."""

    time: float
    address: str
    cpu_utilization: float
    names: int
    total_lookups: int
    neighbors: int


class DomainSampler:
    """Periodic sampler for a whole :class:`InsDomain`."""

    def __init__(self, domain: InsDomain, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.domain = domain
        self.interval = interval
        self.samples: List[ResolverSample] = []
        self._busy_at_last: Dict[str, float] = {}
        self._running = False

    def start(self) -> "DomainSampler":
        """Begin sampling; safe to call once."""
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if self._running:
            self.domain.sim.schedule(self.interval, self._take_sample)

    def _take_sample(self) -> None:
        if not self._running:
            return
        now = self.domain.now
        for inr in self.domain.inrs:
            if inr._terminated:
                continue
            cpu = inr.node.cpu
            busy_before = self._busy_at_last.get(inr.address, 0.0)
            utilization = (cpu.busy_seconds - busy_before) / self.interval
            self._busy_at_last[inr.address] = cpu.busy_seconds
            self.samples.append(
                ResolverSample(
                    time=now,
                    address=inr.address,
                    cpu_utilization=utilization,
                    names=inr.name_count(),
                    total_lookups=inr.monitor.total_lookups,
                    neighbors=len(inr.neighbors),
                )
            )
        self._schedule_next()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def series(self, address: str) -> List[ResolverSample]:
        """All samples for one resolver, in time order."""
        return [s for s in self.samples if s.address == address]

    def peak_utilization(self, address: str) -> float:
        utilizations = [s.cpu_utilization for s in self.series(address)]
        return max(utilizations) if utilizations else 0.0

    def utilization_at(self, address: str, time: float) -> Optional[float]:
        """Utilization of the sample interval covering ``time``."""
        best: Optional[ResolverSample] = None
        for sample in self.series(address):
            if sample.time <= time + self.interval:
                best = sample
            else:
                break
        return best.cpu_utilization if best is not None else None

    def timeline(self) -> List[Tuple[float, Dict[str, float]]]:
        """[(time, {address: utilization})], one entry per interval."""
        grouped: Dict[float, Dict[str, float]] = {}
        for sample in self.samples:
            grouped.setdefault(sample.time, {})[sample.address] = (
                sample.cpu_utilization
            )
        return sorted(grouped.items())
