"""Convenience wiring for whole-domain experiments and applications.

:class:`InsDomain` assembles a simulator, a network, a DSR and any
number of INRs, services and clients, and provides the spawner hook the
load-balancing machinery needs. Every example, integration test and
benchmark builds on it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from ..client import InsClient, Service
from ..naming import NameSpecifier
from ..netsim import Network, Node, Simulator
from ..overlay import DomainSpaceResolver, DsrRegisterCandidate
from ..resolver import (
    DEFAULT_COSTS,
    DSR_PORT,
    INR,
    CostModel,
    InrConfig,
    PortAllocator,
)

#: Address of the node hosting the DSR in every domain.
DSR_HOST = "dsr-host"

ResolverRef = Union[str, INR, None]


class InsDomain:
    """One INS administrative domain inside a simulator."""

    def __init__(
        self,
        seed: int = 0,
        default_latency: float = 0.002,
        default_bandwidth_bps: float = 1_000_000.0,
        default_loss_rate: float = 0.0,
        config: Optional[InrConfig] = None,
        costs: Optional[CostModel] = None,
        dsr_registration_lifetime: Optional[float] = None,
        dsr_sweep_interval: Optional[float] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim,
            default_latency=default_latency,
            default_bandwidth_bps=default_bandwidth_bps,
            default_loss_rate=default_loss_rate,
        )
        self.config = config or InrConfig()
        self.costs = costs or DEFAULT_COSTS
        self.ports = PortAllocator()
        self._counters: Dict[str, itertools.count] = {}
        self._dsr_kwargs: Dict[str, float] = {}
        if dsr_registration_lifetime is not None:
            self._dsr_kwargs["registration_lifetime"] = dsr_registration_lifetime
        if dsr_sweep_interval is not None:
            self._dsr_kwargs["sweep_interval"] = dsr_sweep_interval
        dsr_node = self.network.add_node(DSR_HOST)
        self.dsr = DomainSpaceResolver(dsr_node, **self._dsr_kwargs)
        self.dsr.start()
        self.inrs: List[INR] = []
        self.services: List[Service] = []
        self.clients: List[InsClient] = []
        self.dsr_replicas: List[DomainSpaceResolver] = []
        #: The run's ObsCollector once :meth:`observe` has been called.
        self.collector = None

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _fresh_address(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}-{next(counter)}"

    def _node_for(self, address: Optional[str], prefix: str, cpu_speed: float = 1.0) -> Node:
        if address is None:
            address = self._fresh_address(prefix)
        if self.network.has_node(address):
            return self.network.node(address)
        return self.network.add_node(address, cpu_speed=cpu_speed)

    @staticmethod
    def _resolver_address(resolver: ResolverRef) -> Optional[str]:
        if resolver is None:
            return None
        if isinstance(resolver, INR):
            return resolver.address
        return resolver

    # ------------------------------------------------------------------
    # Resolvers
    # ------------------------------------------------------------------
    def add_inr(
        self,
        address: Optional[str] = None,
        vspaces: Tuple[str, ...] = ("default",),
        cpu_speed: float = 1.0,
        config: Optional[InrConfig] = None,
        costs: Optional[CostModel] = None,
        settle: float = 1.0,
        was_spawned: bool = False,
    ) -> INR:
        """Start an INR and (by default) run the simulator briefly so it
        finishes joining the overlay before the caller proceeds."""
        node = self._node_for(address, "inr", cpu_speed)
        inr = INR(
            node,
            dsr_address=DSR_HOST,
            vspaces=vspaces,
            config=config or self.config,
            costs=costs or self.costs,
            spawner=self.spawn_inr,
            was_spawned=was_spawned,
        )
        self.inrs.append(inr)
        if self.collector is not None:
            inr.tracer = self.collector.tracer
        inr.start()
        if settle > 0:
            self.sim.run_for(settle)
        return inr

    def spawn_inr(self, candidate_address: str, vspaces: Tuple[str, ...]) -> INR:
        """The spawner hook handed to every INR (Section 2.5)."""
        return self.add_inr(
            address=candidate_address, vspaces=vspaces, settle=0.0, was_spawned=True
        )

    def add_dsr_replica(self, address: Optional[str] = None):
        """Start a DSR replica mirroring the primary (Section 2.4:
        "may be replicated for fault-tolerance"). Returns the replica
        process; point INRs or clients at its address to use it."""
        node = self._node_for(address, "dsr-replica")
        replica = DomainSpaceResolver(node, peers=(DSR_HOST,), **self._dsr_kwargs)
        replica.start()
        self.dsr.add_peer(node.address)
        self.dsr_replicas.append(replica)
        return replica

    # ------------------------------------------------------------------
    # Chaos hooks: crash, restart, failover
    # ------------------------------------------------------------------
    def inr_at(self, address: str) -> Optional[INR]:
        """The most recent INR hosted at ``address`` (live or crashed)."""
        found = None
        for inr in self.inrs:
            if inr.address == address:
                found = inr
        return found

    @property
    def live_inrs(self) -> List[INR]:
        """Every INR that is currently up (not crashed or terminated)."""
        return [inr for inr in self.inrs if not inr.terminated]

    def crash_inr(self, target: Union[str, INR]) -> INR:
        """Fail a resolver silently (no goodbye, no deregistration)."""
        inr = self.inr_at(target) if isinstance(target, str) else target
        if inr is None:
            raise ValueError(f"no INR at {target!r}")
        inr.crash()
        return inr

    def restart_inr(self, target: Union[str, INR]) -> INR:
        """Bring a crashed resolver back up on the same node."""
        inr = self.inr_at(target) if isinstance(target, str) else target
        if inr is None:
            raise ValueError(f"no INR at {target!r}")
        inr.restart()
        return inr

    def fail_over_dsr(self) -> DomainSpaceResolver:
        """Kill the primary DSR and promote a standby onto the
        well-known address.

        The promoted process is seeded from the first live replica's
        state (a warm standby); with no replicas it starts empty and the
        INRs' soft-state heartbeats rebuild the registration state
        within one heartbeat interval. Replicas keep mirroring to the
        well-known address, so they now feed the new primary.
        """
        self.dsr.stop()
        node = self.network.node(DSR_HOST)
        live_replicas = [
            replica
            for replica in self.dsr_replicas
            if replica.node.process_on(DSR_PORT) is replica
        ]
        promoted = DomainSpaceResolver(
            node,
            peers=tuple(replica.address for replica in live_replicas),
            **self._dsr_kwargs,
        )
        if live_replicas:
            promoted.adopt(live_replicas[0].snapshot())
        promoted.start()
        self.dsr = promoted
        return promoted

    def add_candidate(self, address: Optional[str] = None) -> str:
        """Create a spare node and register it as an INR candidate."""
        node = self._node_for(address, "candidate")
        self.network.send(
            DSR_HOST, DSR_HOST, DSR_PORT, DsrRegisterCandidate(node.address), 28
        )
        self.sim.run_for(0.01)
        return node.address

    # ------------------------------------------------------------------
    # Applications
    # ------------------------------------------------------------------
    def add_service(
        self,
        name: Union[NameSpecifier, str],
        address: Optional[str] = None,
        resolver: ResolverRef = None,
        metric: float = 0.0,
        lifetime: Optional[float] = None,
        refresh_interval: Optional[float] = None,
        service_class=Service,
        **extra,
    ) -> Service:
        """Start a service announcing ``name`` (a specifier or wire text)."""
        if isinstance(name, str):
            name = NameSpecifier.parse(name)
        node = self._node_for(address, "svc")
        service = service_class(
            node,
            self.ports.allocate(),
            name=name,
            resolver=self._resolver_address(resolver),
            dsr_address=DSR_HOST,
            metric=metric,
            lifetime=lifetime if lifetime is not None else self.config.record_lifetime,
            refresh_interval=(
                refresh_interval
                if refresh_interval is not None
                else self.config.refresh_interval
            ),
            **extra,
        )
        self.services.append(service)
        service.start()
        return service

    def add_client(
        self,
        address: Optional[str] = None,
        resolver: ResolverRef = None,
        client_class=InsClient,
        **extra,
    ) -> InsClient:
        node = self._node_for(address, "client")
        client = client_class(
            node,
            self.ports.allocate(),
            resolver=self._resolver_address(resolver),
            dsr_address=DSR_HOST,
            **extra,
        )
        self.clients.append(client)
        if self.collector is not None:
            client.tracer = self.collector.tracer
        client.start()
        return client

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observe(self, profile_events: bool = False):
        """Attach an :class:`~repro.obs.ObsCollector` to the domain.

        Installs one shared tracer on every current and future INR and
        client (spawned helpers inherit it through :meth:`add_inr`), so
        each client request produces a complete hop-by-hop span tree.
        ``profile_events=True`` additionally counts every simulator
        event by callback. Idempotent: repeated calls return the same
        collector. Call :meth:`harvest` at the end of the run to absorb
        the per-component stats into the collector's registry.
        """
        from ..obs import ObsCollector

        if self.collector is None:
            self.collector = ObsCollector(clock=lambda: self.sim.now)
            if profile_events:
                self.collector.profile_simulator(self.sim)
        tracer = self.collector.tracer
        for inr in self.inrs:
            inr.tracer = tracer
        for client in self.clients:
            client.tracer = tracer
        return self.collector

    def harvest(self):
        """Absorb every component's stats into the collector's metrics
        registry (labelled per INR / client / link) and return it."""
        if self.collector is None:
            raise RuntimeError("call observe() before harvest()")
        self.collector.harvest_domain(self)
        return self.collector

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, seconds: float) -> None:
        """Advance the whole domain by ``seconds`` of virtual time."""
        self.sim.run_for(seconds)

    def settle(self) -> None:
        """Run long enough for joins, advertisements and one round of
        update propagation to quiesce across the domain."""
        self.sim.run_for(2.0)

    @property
    def now(self) -> float:
        return self.sim.now
