"""Figure 15: processing and routing time per INR for a 100-packet burst.

The paper sends bursts of one hundred 586-byte messages (Camera
traffic, ~82-byte random source/destination names) and reports, per
INR, the time to process and route the burst in three placements:

- **local destination** — the receiver is attached to the same INR:
  3.1 ms/packet at 250 names growing to 19 ms/packet at 5000, partly
  lookup but mostly an end-application delivery code artifact that is
  linear in the number of names (reproduced deliberately by the cost
  model, and switchable off for the ablation);
- **remote destination, same vspace** — next-hop forwarding only:
  ~9.8 ms/packet, essentially flat in the name count;
- **remote destination, different vspace** — no local tree at all: a
  DSR query on first access, then cached next-hop forwarding at
  ~3.8 ms/packet, ~381 ms per burst regardless of name count.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..message import Binding, Delivery, InsMessage
from ..naming import NameSpecifier
from ..nametree import AnnouncerID, Endpoint, NameRecord, Route
from ..resolver import DataPacket, InrConfig
from ..resolver.costs import CostModel
from ..resolver.ports import INR_PORT
from .domain import InsDomain
from .workload import UniformWorkload

#: Bytes of application payload that make the whole packet ~586 bytes,
#: matching the paper's Camera messages.
_PAYLOAD_BYTES = 450

_BURST = 100


@dataclass
class RoutingRow:
    """One point of the Figure 15 curves (ms per 100-packet burst)."""

    names_in_vspace: int
    local_ms: float
    remote_same_vspace_ms: float
    remote_other_vspace_ms: float


def _destination_name(vspace: Optional[str]) -> NameSpecifier:
    spec = {"service": ("fig15", {"entity": "sink", "id": "dst"})}
    if vspace is not None:
        spec["vspace"] = vspace
    return NameSpecifier.from_dict(spec)


def _fill_tree(tree, count: int, seed: int) -> None:
    workload = UniformWorkload(
        rng=random.Random(seed),
        depth=2,
        attribute_range=4,
        value_range=4,
        attributes_per_level=2,
        token_pad=1,
    )
    workload.populate_tree(tree, count)


def _burst_makespan_ms(
    domain: InsDomain,
    inr,
    destination: NameSpecifier,
    source_name: NameSpecifier,
    tracer=None,
) -> float:
    """Send the burst straight at ``inr`` and measure how long its CPU
    takes to finish processing and routing it (the per-INR quantity the
    paper's figure reports).

    With a ``tracer``, every packet carries its own root span's trace
    context on the wire (24 extra bytes), so each one produces a
    per-INR hop-span chain downstream.
    """
    message = InsMessage(
        destination=destination,
        source=source_name,
        data=bytes(_PAYLOAD_BYTES),
        binding=Binding.LATE,
        delivery=Delivery.ANYCAST,
    )
    raw = message.encode()
    sender = domain.network.add_node("burst-sender")
    domain.network.configure_link(
        sender.address, inr.address, latency=0.0, bandwidth_bps=1e12
    )
    start = domain.now
    busy_before = inr.node.cpu.busy_seconds
    for index in range(_BURST):
        if tracer is not None:
            span = tracer.start_span(
                "burst.packet", node=sender.address, tags={"index": index}
            )
            message.trace = span.context
            raw = message.encode()
        domain.network.send(
            sender.address, inr.address, INR_PORT, DataPacket(raw=raw), len(raw) + 28
        )
        if tracer is not None:
            tracer.end_span(span, "sent")
    # Bounded: periodic timers reschedule forever, so run() would spin.
    domain.sim.run(until=start + 60.0)
    # The per-INR quantity Figure 15 reports is the CPU time spent
    # processing and routing the burst; measuring busy time (rather
    # than the last-completion timestamp) keeps stray background
    # protocol chatter from polluting the number.
    return (inr.node.cpu.busy_seconds - busy_before) * 1000.0


def _quiet_config() -> InrConfig:
    # Everything periodic pushed out of the measurement window so the
    # burst is the only work the resolver's CPU sees.
    return InrConfig(
        refresh_interval=1e6,
        record_lifetime=1e9,
        heartbeat_interval=1e6,
        expiry_sweep_interval=1e6,
        neighbor_timeout=1e9,
    )


def _measure_local(names: int, seed: int, costs: Optional[CostModel]) -> float:
    domain = InsDomain(seed=seed, config=_quiet_config(), costs=costs)
    inr = domain.add_inr(address="inr-a")
    sink = domain.add_client(address="sink-host", resolver=inr)
    destination = _destination_name(None)
    tree = inr.trees["default"]
    _fill_tree(tree, names - 1, seed)
    tree.insert(
        destination,
        NameRecord(
            announcer=AnnouncerID.generate("fig15-dst"),
            endpoints=[Endpoint(host=sink.address, port=sink.port)],
        ),
    )
    return _burst_makespan_ms(domain, inr, destination, NameSpecifier())


def _setup_remote_same_vspace(domain: InsDomain, names: int, seed: int):
    """The two-INR forwarding topology: ``inr-a`` holds a route to
    ``inr-b``, which delivers to the sink. Returns (inr_a, destination).
    """
    inr_a = domain.add_inr(address="inr-a")
    inr_b = domain.add_inr(address="inr-b")
    sink = domain.add_client(address="sink-host", resolver=inr_b)
    destination = _destination_name(None)
    _fill_tree(inr_a.trees["default"], names - 1, seed)
    _fill_tree(inr_b.trees["default"], names - 1, seed + 1)
    inr_a.trees["default"].insert(
        destination,
        NameRecord(
            announcer=AnnouncerID.generate("fig15-dst"),
            endpoints=[],
            route=Route(next_hop=inr_b.address, metric=0.004),
        ),
    )
    inr_b.trees["default"].insert(
        destination,
        NameRecord(
            announcer=AnnouncerID.generate("fig15-dst"),
            endpoints=[Endpoint(host=sink.address, port=sink.port)],
        ),
    )
    return inr_a, destination


def _measure_remote_same_vspace(
    names: int, seed: int, costs: Optional[CostModel]
) -> float:
    domain = InsDomain(seed=seed, config=_quiet_config(), costs=costs)
    inr_a, destination = _setup_remote_same_vspace(domain, names, seed)
    return _burst_makespan_ms(domain, inr_a, destination, NameSpecifier())


def _measure_remote_other_vspace(
    names: int, seed: int, costs: Optional[CostModel]
) -> float:
    domain = InsDomain(seed=seed, config=_quiet_config(), costs=costs)
    inr_a = domain.add_inr(address="inr-a", vspaces=("default",))
    inr_b = domain.add_inr(address="inr-b", vspaces=("remote-space",))
    sink = domain.add_client(address="sink-host", resolver=inr_b)
    destination = _destination_name("remote-space")
    _fill_tree(inr_b.trees["remote-space"], names - 1, seed)
    inr_b.trees["remote-space"].insert(
        destination,
        NameRecord(
            announcer=AnnouncerID.generate("fig15-dst"),
            endpoints=[Endpoint(host=sink.address, port=sink.port)],
        ),
    )
    domain.run(1.0)  # let inr-b's vspace registration reach the DSR
    return _burst_makespan_ms(domain, inr_a, destination, NameSpecifier())


def run_routing_experiment(
    name_counts: Sequence[int] = (250, 1000, 2500, 5000),
    seed: int = 0,
    costs: Optional[CostModel] = None,
) -> List[RoutingRow]:
    """Reproduce Figure 15. ``costs`` lets the ablation disable the
    delivery-code artifact (``CostModel(model_delivery_artifact=False)``)."""
    rows: List[RoutingRow] = []
    for names in name_counts:
        rows.append(
            RoutingRow(
                names_in_vspace=names,
                local_ms=_measure_local(names, seed, costs),
                remote_same_vspace_ms=_measure_remote_same_vspace(names, seed, costs),
                remote_other_vspace_ms=_measure_remote_other_vspace(names, seed, costs),
            )
        )
    return rows


def run_observed_routing(
    names: int = 250, seed: int = 0, costs: Optional[CostModel] = None
):
    """One traced remote-same-vspace burst: every packet's root span
    chains into an ``inr.hop`` span at ``inr-a`` (forwarded) and another
    at ``inr-b`` (delivered), so the artifact shows the per-hop split of
    the ~9.8 ms/packet figure. Traced packets are 24 wire bytes larger,
    so the makespan here is *not* comparable to the untraced curves.
    Returns ``(burst_ms, collector)``.
    """
    domain = InsDomain(seed=seed, config=_quiet_config(), costs=costs)
    collector = domain.observe(profile_events=True)
    inr_a, destination = _setup_remote_same_vspace(domain, names, seed)
    burst_ms = _burst_makespan_ms(
        domain, inr_a, destination, NameSpecifier(), tracer=collector.tracer
    )
    domain.harvest()
    return burst_ms, collector


def write_bench_routing_json(
    path,
    rows: Sequence[RoutingRow],
    observed_burst_ms: Optional[float] = None,
    collector=None,
) -> dict:
    """Emit ``BENCH_routing.json``: the Figure 15 curves plus, when an
    :func:`run_observed_routing` result is given, an ``observability``
    section with the traced burst's span summary (per-hop percentiles,
    drop attribution) and metrics snapshot. Returns the payload."""
    payload = {
        "benchmark": "fig15-routing-burst",
        "schema_version": 1,
        "rows": [asdict(row) for row in rows],
    }
    if collector is not None:
        payload["observability"] = collector.observability_payload()
        if observed_burst_ms is not None:
            payload["observability"]["traced_burst_ms"] = round(
                observed_burst_ms, 6
            )
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
