"""Operator tooling: visualization and protocol tracing (the text-mode
equivalent of the paper's NetworkManagement application, Section 4)."""

from .trace import ProtocolTrace, TraceEvent, TraceOverflow
from .visualize import (
    domain_report,
    render_name_tree,
    render_overlay,
    render_route_table,
    resolver_report,
)

__all__ = [
    "ProtocolTrace",
    "TraceEvent",
    "TraceOverflow",
    "domain_report",
    "render_name_tree",
    "render_overlay",
    "render_route_table",
    "resolver_report",
]
