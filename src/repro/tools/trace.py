"""A protocol tracer for debugging whole-domain runs.

Wraps the network's delivery path and records every datagram as a
structured event. Used by tests to assert on protocol behaviour (e.g.
"no triggered update was sent after a pure refresh") and by developers
to watch a simulation unfold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..netsim import Network


class TraceOverflow(RuntimeError):
    """A query ran on a trace that overflowed its capacity.

    Events past capacity are counted (``dropped``) but not stored, so
    any aggregate over ``events`` is an undercount. Queries refuse to
    answer rather than return silently-wrong numbers; pass
    ``allow_dropped=True`` to accept the truncated view, or raise
    ``capacity``.
    """


@dataclass(frozen=True)
class TraceEvent:
    """One datagram observed entering the delivery path."""

    time: float
    source: str
    destination: str
    port: int
    kind: str
    size: int
    payload: Any = None

    def __str__(self) -> str:
        return (
            f"{self.time:9.4f}s  {self.source} -> {self.destination}:{self.port}"
            f"  {self.kind} ({self.size}B)"
        )


class ProtocolTrace:
    """Records datagrams passing through one network.

    Install with :meth:`attach`; the original send path is preserved.
    ``keep_payloads`` retains payload references (handy in tests,
    heavier in long runs).
    """

    def __init__(self, keep_payloads: bool = False, capacity: int = 100_000) -> None:
        self.events: List[TraceEvent] = []
        #: datagrams observed after ``events`` filled to capacity; any
        #: nonzero value means the stored events are a truncated prefix.
        self.dropped = 0
        self._keep_payloads = keep_payloads
        self._capacity = capacity
        self._network: Optional[Network] = None
        self._original_send: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def attach(self, network: Network) -> "ProtocolTrace":
        if self._network is not None:
            raise RuntimeError("trace is already attached")
        self._network = network
        self._original_send = network.send

        def traced_send(source, destination, port, payload, size_bytes):
            if len(self.events) < self._capacity:
                self.events.append(
                    TraceEvent(
                        time=network.sim.now,
                        source=source,
                        destination=destination,
                        port=port,
                        kind=type(payload).__name__,
                        size=size_bytes,
                        payload=payload if self._keep_payloads else None,
                    )
                )
            else:
                self.dropped += 1
            self._original_send(source, destination, port, payload, size_bytes)

        network.send = traced_send  # type: ignore[method-assign]
        return self

    def detach(self) -> None:
        if self._network is not None and self._original_send is not None:
            self._network.send = self._original_send  # type: ignore[method-assign]
        self._network = None
        self._original_send = None

    def __enter__(self) -> "ProtocolTrace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    # Every aggregate refuses to answer over a truncated trace unless
    # the caller opts in: a silently-capped count once hid a refresh
    # storm by reporting exactly ``capacity`` events.
    def _complete(self, allow_dropped: bool) -> None:
        if self.dropped and not allow_dropped:
            raise TraceOverflow(
                f"trace overflowed: {self.dropped} event(s) beyond the "
                f"capacity of {self._capacity} were not recorded; pass "
                "allow_dropped=True for the truncated view or raise "
                "capacity"
            )

    def of_kind(self, kind: str, allow_dropped: bool = False) -> List[TraceEvent]:
        """Events whose payload type name matches ``kind``."""
        self._complete(allow_dropped)
        return [event for event in self.events if event.kind == kind]

    def between(
        self, source: str, destination: str, allow_dropped: bool = False
    ) -> List[TraceEvent]:
        self._complete(allow_dropped)
        return [
            event
            for event in self.events
            if event.source == source and event.destination == destination
        ]

    def since(self, time: float, allow_dropped: bool = False) -> List[TraceEvent]:
        self._complete(allow_dropped)
        return [event for event in self.events if event.time >= time]

    def count(self, kind: Optional[str] = None, allow_dropped: bool = False) -> int:
        self._complete(allow_dropped)
        if kind is None:
            return len(self.events)
        return len(self.of_kind(kind, allow_dropped=allow_dropped))

    def total_bytes(
        self, kind: Optional[str] = None, allow_dropped: bool = False
    ) -> int:
        self._complete(allow_dropped)
        events = (
            self.events
            if kind is None
            else self.of_kind(kind, allow_dropped=allow_dropped)
        )
        return sum(event.size for event in events)

    def render(self, limit: int = 50) -> str:
        """The last ``limit`` stored events, one per line. Never raises:
        a truncated trace renders with an explicit overflow note."""
        tail = self.events[-limit:]
        lines = [str(event) for event in tail]
        if self.dropped:
            lines.append(
                f"... trace overflowed: {self.dropped} further event(s) "
                "not recorded ..."
            )
        return "\n".join(lines)
