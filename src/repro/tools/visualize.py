"""Inspection tools: render name-trees, overlays and resolver state.

The paper's implementation shipped a NetworkManagement application "to
monitor and debug the system, and view the name-tree" (Section 4).
These are its text-mode equivalents: deterministic ASCII renderings
used by operators, the examples, and tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..nametree import NameTree
from ..nametree.nodes import ValueNode

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.domain import InsDomain
    from ..resolver import INR


def render_name_tree(tree: NameTree, max_depth: int = 12) -> str:
    """An ASCII drawing of the alternating attribute/value layers.

    Attribute-nodes print as ``attribute:`` and value-nodes as
    ``= value``, with record counts at value-nodes that hold any —
    the same structure as the paper's Figure 4.
    """
    lines: List[str] = [f"name-tree vspace={tree.vspace!r} records={len(tree)}"]

    def render_value(node: ValueNode, prefix: str, depth: int) -> None:
        if depth > max_depth:
            lines.append(prefix + "...")
            return
        attributes = sorted(node.children.values(), key=lambda a: a.attribute)
        for a_index, attribute_node in enumerate(attributes):
            a_last = a_index == len(attributes) - 1
            a_branch = "`-" if a_last else "|-"
            lines.append(f"{prefix}{a_branch} {attribute_node.attribute}:")
            a_prefix = prefix + ("   " if a_last else "|  ")
            values = sorted(attribute_node.children.values(),
                            key=lambda v: v.value)
            for v_index, value_node in enumerate(values):
                v_last = v_index == len(values) - 1
                v_branch = "`-" if v_last else "|-"
                suffix = (
                    f"  ({len(value_node.records)} record"
                    f"{'s' if len(value_node.records) != 1 else ''})"
                    if value_node.records
                    else ""
                )
                lines.append(f"{a_prefix}{v_branch} = {value_node.value}{suffix}")
                render_value(
                    value_node,
                    a_prefix + ("   " if v_last else "|  "),
                    depth + 1,
                )

    render_value(tree.root, "", 0)
    return "\n".join(lines)


def render_overlay(domain: "InsDomain") -> str:
    """The overlay spanning tree, drawn from parent pointers."""
    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    live = [inr for inr in domain.inrs if not inr._terminated]
    for inr in live:
        parent = inr.neighbors.parent
        if parent is None:
            roots.append(inr.address)
        else:
            children.setdefault(parent.address, []).append(inr.address)
    lines = [f"overlay: {len(live)} INRs"]

    def render(address: str, prefix: str, branch: str) -> None:
        lines.append(f"{prefix}{branch}{address}")
        kids = sorted(children.get(address, []))
        for index, kid in enumerate(kids):
            last = index == len(kids) - 1
            render(
                kid,
                prefix + ("   " if branch.startswith("`") else "|  ")
                if branch
                else prefix,
                "`- " if last else "|- ",
            )

    for root in sorted(roots):
        render(root, "", "")
    return "\n".join(lines)


def resolver_report(inr: "INR") -> str:
    """A one-screen status report for one resolver."""
    stats = inr.stats
    lines = [
        f"INR {inr.address} ({'active' if inr.active else 'joining'})",
        f"  vspaces: {', '.join(inr.vspaces)}",
        f"  names: {inr.name_count()}",
        f"  neighbors: {', '.join(inr.neighbors.addresses) or '<none>'}",
        f"  lookups: {stats.lookups}",
        f"  update names processed: {stats.update_names_processed}",
        f"  packets: {stats.packets_delivered_locally} delivered, "
        f"{stats.packets_forwarded} forwarded, {stats.packets_dropped} dropped",
        f"  triggered updates sent: {stats.triggered_updates_sent}",
    ]
    if inr.cache is not None:
        lines.append(
            f"  cache: {len(inr.cache)} entries, {inr.cache.hits} hits, "
            f"{inr.cache.misses} misses"
        )
    return "\n".join(lines)


def domain_report(domain: "InsDomain") -> str:
    """Status of every resolver plus the DSR's view of the domain."""
    sections = [
        f"domain at t={domain.now:.3f}s: "
        f"{len(domain.dsr.active_inrs)} active INRs, "
        f"{len(domain.dsr.candidates)} candidates",
        render_overlay(domain),
    ]
    for inr in domain.inrs:
        if not inr._terminated:
            sections.append(resolver_report(inr))
    return "\n\n".join(sections)


def render_route_table(inr: "INR") -> str:
    """The resolver's name-records as a routing table: one row per
    record with its name, next hop, metrics and expiry."""
    lines = [f"routes at {inr.address}"]
    for vspace, tree in sorted(inr.trees.items()):
        lines.append(f"  vspace {vspace!r}:")
        rows = sorted(
            (
                (name.to_wire(), record)
                for name, record in tree.names()
            ),
            key=lambda pair: pair[0],
        )
        if not rows:
            lines.append("    (empty)")
        for wire, record in rows:
            hop = record.route.next_hop or "<local>"
            expiry = (
                "never"
                if record.expires_at == float("inf")
                else f"t={record.expires_at:.1f}"
            )
            endpoints = ",".join(str(e) for e in record.endpoints) or "-"
            lines.append(
                f"    {wire}\n"
                f"      via {hop} route-metric={record.route.metric:.4f} "
                f"anycast-metric={record.anycast_metric:g} "
                f"expires {expiry} endpoints {endpoints}"
            )
    return "\n".join(lines)
