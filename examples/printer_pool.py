#!/usr/bin/env python
"""Printer: load-balanced printing via intentional anycast (Section 3.3).

A pool of printer spoolers advertises into INS with metrics that track
their live queues. Users submit jobs by *location only* — the name
``[service=printer[entity=spooler]][room=517]`` deliberately omits the
printer id — and INRs route each job to the least-loaded printer. The
second half flips one printer into an error state and shows anycast
steering away from it, then lists and removes a queued job.

Run:  python examples/printer_pool.py
"""

from repro.apps import PrinterClient, PrinterSpooler, printer_name
from repro.experiments import InsDomain


def main() -> None:
    domain = InsDomain(seed=11)
    inr_a = domain.add_inr()
    inr_b = domain.add_inr()

    def app(cls, resolver, **kwargs):
        node = domain.network.add_node(f"host-{cls.__name__}-{kwargs.get('printer_id', kwargs.get('user', ''))}")
        instance = cls(node, domain.ports.allocate(), resolver=resolver.address, **kwargs)
        instance.start()
        return instance

    lw1 = app(PrinterSpooler, inr_a, printer_id="lw1", room="517", pages_per_second=50)
    lw2 = app(PrinterSpooler, inr_b, printer_id="lw2", room="517", pages_per_second=50)
    alice = app(PrinterClient, inr_a, user="alice")
    bob = app(PrinterClient, inr_b, user="bob")
    domain.run(3.0)

    print("submitting 6 jobs by location (room 517):")
    replies = []
    for submitter, size in [(alice, 200), (bob, 200), (alice, 100),
                            (bob, 100), (alice, 150), (bob, 150)]:
        replies.append((submitter.user, submitter.submit_best("517", size=size)))
        domain.run(1.0)  # let the metric change propagate between jobs
    for user, reply in replies:
        chosen = reply.value
        print(f"  {user}'s job {chosen['job_id']} -> printer {chosen['printer']}")

    print("\nlw1 goes into an error state (out of paper):")
    lw1.set_error(True)
    domain.run(1.0)
    reply = alice.submit_best("517", size=10)
    domain.run(1.0)
    print(f"  alice's job -> printer {reply.value['printer']} (lw1 avoided)")

    lw1.set_error(False)
    domain.run(1.0)

    print("\nqueue management (list + remove with permission check):")
    big = bob.submit_to(printer_name("lw2", "517"), size=5000)
    domain.run(1.0)
    job_id = big.value["job_id"]
    listing = alice.list_jobs(printer_name("lw2", "517"))
    domain.run(1.0)
    print(f"  lw2 queue: {listing.value['jobs']}")
    denied = alice.remove_job(printer_name("lw2", "517"), job_id)
    domain.run(1.0)
    print(f"  alice removing bob's job: {denied.value}")
    allowed = bob.remove_job(printer_name("lw2", "517"), job_id)
    domain.run(1.0)
    print(f"  bob removing his own job: {allowed.value}")

    print(f"\ncompleted jobs: lw1={len(lw1.completed)} lw2={len(lw2.completed)}")


if __name__ == "__main__":
    main()
