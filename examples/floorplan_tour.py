#!/usr/bin/env python
"""Floorplan: map-based service discovery (Section 3.1).

A user walks through a building: entering a region pops up its map
(fetched from the Locator service by intentional name, never by
address) and the services discovered there appear as icons. Services
that stop advertising disappear from the display after their soft-state
lifetime — no de-registration ever happens.

Run:  python examples/floorplan_tour.py
"""

from repro.apps import (
    CameraTransmitter,
    FloorplanApp,
    Locator,
    PrinterSpooler,
)
from repro.experiments import InsDomain
from repro.resolver import InrConfig


def main() -> None:
    # Short lifetimes so the demo shows soft-state expiry quickly.
    domain = InsDomain(seed=5, config=InrConfig(refresh_interval=5.0,
                                                record_lifetime=15.0))
    inr = domain.add_inr()

    def app(cls, host, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(),
                       resolver=inr.address, **kwargs)
        instance.start()
        return instance

    locator = app(Locator, "locator-host")
    locator.add_map("floor-5", "+----[ floor 5 ]----+ rooms 510..519")
    locator.add_map("floor-6", "+----[ floor 6 ]----+ rooms 610..619")

    camera = app(CameraTransmitter, "cam-host", camera_id="a", room="510",
                 refresh_interval=5.0, lifetime=15.0)
    printer = app(PrinterSpooler, "printer-host", printer_id="lw5",
                  room="517", refresh_interval=5.0, lifetime=15.0)
    tv = domain.add_service(
        "[service=controller[entity=tv-mp3][id=tv1]][room=511]",
        resolver=inr, refresh_interval=5.0, lifetime=15.0,
    )

    user = app(FloorplanApp, "tablet", user="carol", region="floor-5")
    domain.run(2.0)

    print("carol enters floor 5:")
    user.move_to_region("floor-5")
    domain.run(1.0)
    print(f"  map: {user.map_data}")
    print("  icons:")
    for label in user.visible_services():
        print(f"    {label}")

    target = user.click("camera/transmitter@510")
    print(f"  clicking the camera icon launches against: {target}")

    print("\nthe TV controller dies (simply stops advertising):")
    tv.stop()
    domain.run(25.0)  # > soft-state lifetime
    user.refresh()
    domain.run(1.0)
    print("  icons after expiry:")
    for label in user.visible_services():
        print(f"    {label}")

    print("\ncarol walks to floor 6:")
    user.move_to_region("floor-6")
    domain.run(1.0)
    print(f"  map: {user.map_data}")


if __name__ == "__main__":
    main()
