#!/usr/bin/env python
"""Virtual spaces: partitioning the namespace across resolvers (§2.5).

Two INRs each route one virtual space (cameras vs printers). Clients
attached to either resolver can reach services in both spaces: requests
for a foreign vspace are forwarded to its owning resolver, discovered
through the DSR once and cached afterwards.

Run:  python examples/vspace_partitioning.py
"""

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.tools import render_name_tree


def main() -> None:
    domain = InsDomain(seed=17)
    cameras_inr = domain.add_inr(address="inr-cameras", vspaces=("cameras",))
    printers_inr = domain.add_inr(address="inr-printers", vspaces=("printers",))

    for i in range(3):
        domain.add_service(
            f"[service=camera[id=c{i}]][room=51{i}][vspace=cameras]",
            resolver=cameras_inr,
        )
        domain.add_service(
            f"[service=printer[id=p{i}]][room=51{i}][vspace=printers]",
            resolver=printers_inr, metric=float(i),
        )
    domain.run(3.0)

    print("per-resolver name-trees (each routes only its own space):")
    print(f"  inr-cameras:  {cameras_inr.name_count('cameras')} names, "
          f"printers tree: {cameras_inr.routes_vspace('printers')}")
    print(f"  inr-printers: {printers_inr.name_count('printers')} names, "
          f"cameras tree: {printers_inr.routes_vspace('cameras')}")
    print(f"  DSR vspace map: cameras -> "
          f"{domain.dsr.resolvers_for('cameras')}, printers -> "
          f"{domain.dsr.resolvers_for('printers')}")

    # A client on the cameras resolver reaches printers transparently.
    client = domain.add_client(resolver=cameras_inr)
    printer_query = NameSpecifier.parse("[service=printer][vspace=printers]")

    got = []
    for service in domain.services:
        service.on_message(
            lambda m, s, svc=service: got.append(svc.name.to_wire())
        )

    queries_before = domain.dsr.queries_served
    print("\nclient on inr-cameras anycasts 3 jobs into the printers space:")
    for i in range(3):
        client.send_anycast(printer_query, f"job{i}".encode())
        domain.run(0.5)
    for wire in got:
        print(f"  delivered to {wire}")
    print(f"  DSR consulted {domain.dsr.queries_served - queries_before} time(s) "
          "(first packet only; the vspace mapping is cached)")

    reply = client.discover(printer_query)
    domain.run(1.0)
    print("\ncross-space discovery from inr-cameras:")
    for name, metric in reply.value:
        print(f"  {name.to_wire()} metric={metric}")

    print("\ninr-printers name-tree:")
    print(render_name_tree(printers_inr.trees["printers"]))


if __name__ == "__main__":
    main()
