#!/usr/bin/env python
"""Late binding under mobility and failure — the paper's core claim.

An application keeps talking to "the temperature service in the lab"
while, underneath it:

1. the serving node changes its network address (node mobility),
2. a better replica appears and anycast re-binds to it (performance
   tracking via application metrics),
3. that replica crashes silently and soft state routes around it,
4. an entire INR fails and the overlay self-heals.

At no point does the client handle an address, reconnect, or even learn
that anything changed — the intentional name is the only handle it has.

Run:  python examples/mobility_handoff.py
"""

from repro.apps import AppEndpoint
from repro.client import MobilityManager
from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig


class TemperatureSensor(AppEndpoint):
    """A trivial sensor service used to show the handoffs."""

    def __init__(self, node, port, sensor_id: str, **kwargs):
        name = NameSpecifier.parse(
            f"[service=thermometer[entity=sensor][id={sensor_id}]][location=lab]"
        )
        super().__init__(node, port, name=name, **kwargs)
        self.sensor_id = sensor_id

    def handle_request(self, message, fields, source):
        if fields.get("op") == "read":
            self.respond(message, {"sensor": self.sensor_id, "celsius": 21.5})


def main() -> None:
    domain = InsDomain(
        seed=13,
        config=InrConfig(refresh_interval=3.0, record_lifetime=9.0),
    )
    inr_a = domain.add_inr()
    inr_b = domain.add_inr()

    def sensor(host, sensor_id, resolver, metric):
        node = domain.network.add_node(host)
        s = TemperatureSensor(
            node, domain.ports.allocate(), sensor_id=sensor_id,
            resolver=resolver.address, metric=metric,
            refresh_interval=3.0, lifetime=9.0,
        )
        s.start()
        return s

    def reader_app(host, resolver):
        node = domain.network.add_node(host)
        r = AppEndpoint(
            node, domain.ports.allocate(),
            name=NameSpecifier.parse("[service=thermometer[entity=reader][id=app]]"),
            resolver=resolver.address,
            dsr_address="dsr-host",  # remembered so reattach() can recover
        )
        r.start()
        return r

    lab_sensor = NameSpecifier.parse("[service=thermometer[entity=sensor]][location=lab]")
    s1 = sensor("sensor-host-1", "s1", inr_a, metric=1.0)
    reader = reader_app("reader-host", inr_b)
    domain.run(3.0)

    def read(note):
        reply = reader.request(lab_sensor, {"op": "read"})
        domain.run(1.0)
        answer = reply.value_or(None)
        served = answer["sensor"] if answer else "NOBODY"
        print(f"  [{note}] answered by {served}")
        return served

    print("baseline:")
    read("s1 at sensor-host-1")

    print("1) node mobility — s1's host changes address:")
    MobilityManager(s1.node).migrate("sensor-roaming")
    domain.run(2.0)
    read(f"s1 now at {s1.address}")

    print("2) a better replica (lower metric) joins on the other INR:")
    s2 = sensor("sensor-host-2", "s2", inr_b, metric=0.5)
    domain.run(4.0)
    read("anycast re-binds to s2")

    print("3) s2 crashes silently — soft state expires it:")
    s2.stop()
    domain.run(30.0)
    read("back to s1 without any client action")

    print("4) the client's own INR crashes — it re-attaches via the DSR:")
    inr_b.crash()
    reader.reattach()
    domain.run(3.0)
    read(f"via {reader.resolver} after re-attachment")


if __name__ == "__main__":
    main()
