#!/usr/bin/env python
"""Camera: a mobile camera network (Section 3.2).

Shows all four Camera behaviours from the paper:

1. request-response frame fetches, late-bound by intentional anycast;
2. subscription via intentional multicast — group membership is just a
   name with a wild-card id;
3. node mobility: the camera's host changes network address mid-run and
   communication continues after the next advertisement;
4. in-network caching: repeated cacheable requests are answered by the
   receiver's INR instead of travelling to the camera.

Run:  python examples/camera_network.py
"""

from repro.apps import CameraReceiver, CameraTransmitter
from repro.client import MobilityManager
from repro.experiments import InsDomain


def main() -> None:
    domain = InsDomain(seed=23)
    inr_a = domain.add_inr()
    inr_b = domain.add_inr()

    cam_node = domain.network.add_node("camera-host")
    camera = CameraTransmitter(
        cam_node, domain.ports.allocate(),
        camera_id="a", room="510",
        resolver=inr_a.address,
        publish_interval=2.0,   # subscription mode: multicast every 2s
        cache_lifetime=30,      # responses may be cached by INRs
    )
    camera.start()

    viewers = []
    for i in (1, 2):
        node = domain.network.add_node(f"viewer-host-{i}")
        viewer = CameraReceiver(
            node, domain.ports.allocate(),
            receiver_id=f"r{i}", room="510",
            resolver=inr_b.address,
        )
        viewer.start()
        viewers.append(viewer)
    domain.run(3.0)

    print("1) request-response:")
    reply = viewers[0].request_frame()
    domain.run(1.0)
    print(f"   viewer r1 got: {reply.value['frame']}")

    print("2) subscription (intentional multicast, [id=*]):")
    domain.run(6.0)
    for viewer in viewers:
        print(f"   viewer {viewer.receiver_id} received "
              f"{len(viewer.frames)} frames")

    print("3) node mobility: camera host changes address")
    MobilityManager(cam_node).migrate("camera-roaming")
    domain.run(2.0)
    reply = viewers[1].request_frame()
    domain.run(1.0)
    print(f"   viewer r2 got {reply.value['frame']!r} from the camera "
          f"now at {camera.address}")

    print("4) caching: 5 cacheable requests for the same camera")
    before = camera.requests_served
    for i in range(5):
        domain.sim.schedule(i * 0.5, viewers[0].request_frame, None, True)
    domain.run(4.0)
    print(f"   origin served {camera.requests_served - before} of 5; "
          f"cache answered "
          f"{inr_b.stats.packets_answered_from_cache + inr_a.stats.packets_answered_from_cache}")

    print("5) service mobility: camera carried to room 520")
    camera.move_to_room("520")
    domain.run(2.0)
    viewers[0].subscribe_to_room("520")
    domain.run(5.0)
    latest = viewers[0].frames[-1]["frame"]
    print(f"   viewer r1 now following room 520: {latest}")


if __name__ == "__main__":
    main()
