#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation, scaled down.

The full-size sweeps live in ``pytest benchmarks/ --benchmark-only``;
this script runs reduced versions of all six figures in about a minute
and prints the same tables, so a reader can see the reproduction
working before committing to the full run.

Run:  python examples/figures_preview.py
"""

from repro.experiments.fig08 import run_saturation_experiment, saturation_point
from repro.experiments.fig09 import run_partition_experiment
from repro.experiments.fig12 import run_lookup_experiment
from repro.experiments.fig13 import run_size_experiment
from repro.experiments.fig14 import run_discovery_experiment, slope_ms_per_hop
from repro.experiments.fig15 import run_routing_experiment


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("Figure 8: CPU vs bandwidth saturation (15s refresh, 1 Mbps)")
    rows = run_saturation_experiment(
        name_counts=(0, 5000, 10000, 15000, 20000), measure_intervals=1
    )
    print(f"{'names':>6}  {'cpu %':>6}  {'bandwidth %':>11}")
    for row in rows:
        print(f"{row.total_names:>6}  {row.cpu_percent:>6.1f}  "
              f"{row.bandwidth_percent:>11.1f}")
    print(f"CPU saturates at ~{saturation_point(rows)} names; "
          "bandwidth never reaches the link (the paper's CPU-bound claim)")

    banner("Figure 9: periodic update time (ms), two equal vspaces")
    rows = run_partition_experiment(name_counts=(1000, 3000, 5000))
    print(f"{'names':>6}  {'1v/1m':>7}  {'2v/1m':>7}  {'2v/2m':>7}")
    for row in rows:
        print(f"{row.total_names:>6}  {row.one_vspace_one_machine_ms:>7.0f}  "
              f"{row.two_vspaces_one_machine_ms:>7.0f}  "
              f"{row.two_vspaces_two_machines_ms:>7.0f}")
    print("partitioning across two machines halves per-machine time")

    banner("Figure 12: name-tree lookup performance (native measurement)")
    rows = run_lookup_experiment(name_counts=(100, 2500, 10000),
                                 lookups_per_point=500)
    print(f"{'names':>6}  {'lookups/s':>10}  {'mean (us)':>9}")
    for row in rows:
        print(f"{row.names_in_tree:>6}  {row.lookups_per_second:>10.0f}  "
              f"{row.mean_lookup_us:>9.1f}")

    banner("Figure 13: name-tree memory")
    rows = run_size_experiment(name_counts=(100, 2500, 10000))
    print(f"{'names':>6}  {'MB':>6}")
    for row in rows:
        print(f"{row.names_in_tree:>6}  {row.tree_megabytes:>6.2f}")

    banner("Figure 14: discovery time vs INR hops")
    rows = run_discovery_experiment(max_hops=6)
    print(f"{'hops':>4}  {'ms':>6}")
    for row in rows:
        print(f"{row.hops:>4}  {row.discovery_ms:>6.2f}")
    print(f"slope {slope_ms_per_hop(rows):.2f} ms/hop "
          "(paper: linear, < 10 ms/hop)")

    banner("Figure 15: time to route a 100-packet burst (ms)")
    rows = run_routing_experiment(name_counts=(250, 2500))
    print(f"{'names':>6}  {'local':>7}  {'remote':>7}  {'cross-vspace':>12}")
    for row in rows:
        print(f"{row.names_in_vspace:>6}  {row.local_ms:>7.0f}  "
              f"{row.remote_same_vspace_ms:>7.0f}  "
              f"{row.remote_other_vspace_ms:>12.0f}")
    print("local grows with names (delivery artifact), remote flat, "
          "cross-vspace constant")


if __name__ == "__main__":
    main()
