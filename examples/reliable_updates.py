#!/usr/bin/env python
"""Footnote 3: soft-state flooding vs reliable-delta updates.

The paper's INRs re-flood every name to every neighbor each refresh
interval — simple and robust, but bandwidth grows with the namespace.
Footnote 3 sketches the alternative this library also implements:
TCP-like per-neighbor connections carrying only *changed* entries plus
explicit withdrawals. This demo runs both modes side by side on the
same workload and prints the trade.

Run:  python examples/reliable_updates.py
"""

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig


def run_mode(mode: str) -> dict:
    config = InrConfig(update_mode=mode, refresh_interval=10.0,
                       record_lifetime=30.0)
    domain = InsDomain(seed=41, config=config)
    inr_a = domain.add_inr(address="inr-a")
    inr_b = domain.add_inr(address="inr-b")
    services = [
        domain.add_service(f"[service=fleet[id=n{i:02d}]]", resolver=inr_a,
                           refresh_interval=10.0, lifetime=30.0)
        for i in range(15)
    ]
    domain.run(15.0)  # converge

    link = domain.network.link("inr-a", "inr-b")
    bytes_before = link.stats.bytes
    domain.run(60.0)
    steady_rate = (link.stats.bytes - bytes_before) / 60.0

    # one service dies; how long until the remote resolver forgets it?
    services[0].stop()
    died = domain.now
    removed = None
    guard = 0
    while removed is None and domain.sim.step():
        guard += 1
        if guard > 1_000_000:
            break  # never drains (periodic timers); bound the scan
        if inr_b.name_count() < 15:
            removed = domain.now
    return {
        "mode": mode,
        "bytes_per_s": steady_rate,
        "removal_s": (removed - died) if removed else float("inf"),
        "names_at_b": inr_b.name_count(),
    }


def main() -> None:
    print("15 services on inr-a, observed from inr-b "
          "(10 s refresh, 30 s lifetime):\n")
    print(f"{'mode':16s} {'steady link traffic':>22s} {'dead-name removal':>20s}")
    for mode in ("soft-state", "reliable-delta"):
        result = run_mode(mode)
        print(f"{result['mode']:16s} {result['bytes_per_s']:16.1f} B/s "
              f"{result['removal_s']:17.1f} s")
    print(
        "\nreliable-delta sends empty keepalives instead of re-flooding\n"
        "every name, and an explicit withdrawal replaces the per-hop\n"
        "soft-state expiry cascade. The price (footnote 3): connection\n"
        "state per neighbor inside each resolver."
    )


if __name__ == "__main__":
    main()
