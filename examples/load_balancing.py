#!/usr/bin/env python
"""Load balancing: spawn-on-overload and self-termination (§2.5).

One INR is hammered with early-binding lookups. Watch it claim a
candidate node from the DSR, spawn a helper INR there, and watch the
client configuration protocol (periodic re-selection driven by
INR-pings, which queue behind the loaded resolver's CPU) move the
traffic over. When the load stops, the idle helper retires and returns
its node — unless it is the sole resolver of a virtual space.

Run:  python examples/load_balancing.py
"""

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig, ResolutionRequest
from repro.resolver.ports import INR_PORT


def main() -> None:
    config = InrConfig(
        enable_load_balancing=True,
        spawn_lookup_rate=150.0,       # lookups/s that trigger a spawn
        terminate_lookup_rate=1.0,     # idleness that triggers retirement
        load_check_interval=5.0,
        minimum_lifetime=10.0,
        refresh_interval=1e6,          # keep update traffic out of the demo
    )
    domain = InsDomain(seed=29, config=config)
    main_inr = domain.add_inr(address="inr-main")
    domain.add_candidate("spare-1")
    domain.add_service("[service=busy[id=1]]", resolver=main_inr)
    client = domain.add_client(resolver=main_inr, reselect_interval=5.0)
    domain.settle()

    # An open-loop lookup storm: 900/s against a resolver that can
    # serve ~670/s — genuinely overloaded, queues build up.
    query = NameSpecifier.parse("[service=busy]")

    def one_lookup():
        target = client.resolver or main_inr.address
        client.send(
            target, INR_PORT,
            ResolutionRequest(name=query, reply_to=client.address,
                              reply_port=client.port),
        )

    duration = 30.0
    for i in range(int(duration * 900)):
        domain.sim.schedule(i / 900.0, one_lookup)

    print(f"{'t':>5}  {'active INRs':<24} {'client uses':<10} "
          f"{'main lookups':>12} {'helper lookups':>14}")
    for _ in range(8):
        domain.run(5.0)
        helper = next((i for i in domain.inrs if i.address == "spare-1"), None)
        print(f"{domain.now:5.0f}  {','.join(domain.dsr.active_inrs):<24} "
              f"{client.resolver or '-':<10} "
              f"{main_inr.monitor.total_lookups:>12} "
              f"{helper.monitor.total_lookups if helper else 0:>14}")

    print("\nload over — waiting for the idle helper to retire...")
    domain.run(180.0)
    print(f"active INRs now: {','.join(domain.dsr.active_inrs)}")
    print(f"candidates returned to the pool: {domain.dsr.candidates or '(none)'}")


if __name__ == "__main__":
    main()
