#!/usr/bin/env python
"""Quickstart: an INS domain in ~60 lines.

Builds a small domain (DSR + two self-configuring INRs), starts two
printer services with different load metrics, and exercises all three
INS delivery services: early binding, intentional anycast and
intentional multicast — plus name discovery.

Run:  python examples/quickstart.py
"""

from repro.experiments import InsDomain
from repro.naming import NameSpecifier


def main() -> None:
    # One administrative domain inside a deterministic simulator.
    domain = InsDomain(seed=7)
    inr_a = domain.add_inr()  # self-configures via the DSR
    inr_b = domain.add_inr()  # joins inr_a's overlay (min-RTT peer)
    print(f"overlay: {inr_b.address} joined via "
          f"{inr_b.neighbors.parent.address}")

    # Services describe WHAT they are with attribute-value names and
    # advertise an application metric (here: current queue length).
    domain.add_service(
        "[service=printer[entity=spooler][id=lw1]][room=517]",
        resolver=inr_a, metric=5.0,
    )
    domain.add_service(
        "[service=printer[entity=spooler][id=lw2]][room=517]",
        resolver=inr_b, metric=2.0,
    )
    domain.run(3.0)  # advertisements propagate INR-to-INR

    client = domain.add_client(resolver=inr_a)
    anything_in_517 = NameSpecifier.parse(
        "[service=printer[entity=spooler]][room=517]"
    )

    # 1. Early binding: get [address, port, transport] + metrics back.
    resolution = client.resolve_early(anything_in_517)
    domain.run(0.5)
    print("early binding:")
    for endpoint, metric in resolution.value:
        print(f"  {endpoint}  metric={metric}")

    # 2. Intentional anycast: the message goes to the LEAST metric
    #    service; no address ever appears in the application.
    client.send_anycast(anything_in_517, b"print me")
    domain.run(0.5)

    # 3. Intentional multicast: every match receives a copy.
    client.send_multicast(anything_in_517, b"status?")
    domain.run(0.5)

    # 4. Name discovery, for bootstrap UIs like Floorplan.
    discovery = client.discover(NameSpecifier.parse("[service=printer]"))
    domain.run(0.5)
    print("discovered names:")
    for name, metric in discovery.value:
        print(f"  {name.to_wire()}  metric={metric}")

    stats = inr_a.stats
    print(f"inr-a stats: lookups={stats.lookups} "
          f"forwarded={stats.packets_forwarded} "
          f"delivered={stats.packets_delivered_locally}")


if __name__ == "__main__":
    main()
